//! SLO-driven control of the dynamic batch former.
//!
//! The serving numbers expose the paper's central batching argument: PIM
//! throughput collapses at small batch sizes (per-(query,cluster) granules
//! don't amortize the DPU transfer legs), while a large *fixed* batch window
//! punishes every query with the full waiting delay whether the stream needs
//! it or not. The right batch window is therefore a function of the latency
//! target, not a constant — which is what a closed-loop controller computes.
//!
//! [`BatchPolicy`] is the seam: the [`SearchService`](crate::service)
//! consults the policy for the former's close conditions before every
//! arrival and feeds every completion latency back. Two implementations:
//!
//! * [`FixedPolicy`] — the static [`BatchFormerConfig`] of the original
//!   service, now expressed as the trivial controller.
//! * [`SloController`] — a two-regime AIMD loop on the replay clock: every
//!   `adjust_interval_s` of simulated time it compares the window's observed
//!   p99 against the SLO. A miss has two distinct causes with *opposite*
//!   fixes, which the controller separates with the engine-backlog signal:
//!   when closed batches sit waiting for a saturated engine, the batches are
//!   too *small* to amortize the per-batch PIM overheads, so the controller
//!   widens the window multiplicatively (more amortization ⇒ more capacity);
//!   when the engine is keeping up, the batching window itself is the
//!   latency, so it shrinks multiplicatively. Comfortably below the SLO it
//!   grows additively, harvesting batch amortization without overshooting.

//!
//! With multiple tenants in one stream, a single window — however adaptive —
//! must serve the tightest SLO in the mix, giving up the amortization the
//! loose-SLO traffic would happily trade latency for. [`ControllerBank`]
//! removes that coupling: one [`SloController`] per tenant, each steering its
//! own batching window from its own completions only (the former keeps
//! tenant-pure groups, so the routing is exact).

use crate::batcher::BatchFormerConfig;
use annkit::workload::TenantProfile;
use baselines::engine::TenantId;

/// A (possibly adaptive) source of batch-former close conditions.
///
/// The service calls [`current`](Self::current) before admitting each
/// arrival, [`observe_batch`](Self::observe_batch) when a batch is handed to
/// the engine, and [`observe`](Self::observe) once per completed query — all
/// on the simulated clock, so a policy sees exactly the feedback a real
/// controller would. The `*_for` variants route the same calls per tenant;
/// tenant-blind policies inherit defaults that fold them into the global
/// ones.
///
/// Implementing a custom policy takes three methods:
///
/// ```
/// use upanns_serve::batcher::BatchFormerConfig;
/// use upanns_serve::controller::BatchPolicy;
///
/// /// Doubles the batch cap every time a completion is observed.
/// struct Doubling(BatchFormerConfig, usize);
///
/// impl BatchPolicy for Doubling {
///     fn name(&self) -> &str {
///         "doubling"
///     }
///     fn current(&self) -> BatchFormerConfig {
///         self.0
///     }
///     fn observe(&mut self, _now: f64, _latency_s: f64) {
///         self.0.max_batch *= 2;
///         self.1 += 1;
///     }
///     fn adjustments(&self) -> usize {
///         self.1
///     }
/// }
///
/// let mut policy = Doubling(BatchFormerConfig { max_batch: 8, max_delay_s: 1e-3 }, 0);
/// policy.observe(0.5, 2e-3);
/// assert_eq!(policy.current().max_batch, 16);
/// assert_eq!(policy.adjustments(), 1);
/// // Tenant-routed feedback folds into the global hooks by default:
/// use baselines::engine::TenantId;
/// policy.observe_for(TenantId(3), 0.6, 2e-3);
/// assert_eq!(policy.current().max_batch, 32);
/// ```
///
/// Policies are `Send`: the threaded runtime
/// (`upanns-runtime`) moves the boxed policy into its batch-former stage
/// thread, which owns it exclusively for the life of the pipeline. All
/// shipped policies are plain data, so the bound costs nothing.
pub trait BatchPolicy: Send {
    /// Display name of the policy ("fixed", "adaptive-slo", ...).
    fn name(&self) -> &str;

    /// The close conditions the former should use right now.
    fn current(&self) -> BatchFormerConfig;

    /// Feedback: one query completed at simulated time `now` with end-to-end
    /// latency `latency_s`. Default: ignore (static policies).
    fn observe(&mut self, now: f64, latency_s: f64) {
        let _ = (now, latency_s);
    }

    /// Feedback: a closed batch of `batch_len` queries finished at `now`
    /// after spending `engine_wait_s` queued behind a busy engine before it
    /// could start. A persistently large wait relative to the batching window
    /// means the engine — not the window — is the bottleneck. Default:
    /// ignore.
    fn observe_batch(&mut self, now: f64, batch_len: usize, engine_wait_s: f64) {
        let _ = (now, batch_len, engine_wait_s);
    }

    /// How many times the policy changed its answer so far (0 for static
    /// policies).
    fn adjustments(&self) -> usize {
        0
    }

    /// The close conditions `tenant`'s groups should use right now.
    /// Tenant-blind policies (the default) answer with the global
    /// [`current`](Self::current).
    fn current_for(&self, tenant: TenantId) -> BatchFormerConfig {
        let _ = tenant;
        self.current()
    }

    /// Tenant-routed completion feedback. Tenant-blind policies fold it into
    /// the global [`observe`](Self::observe).
    fn observe_for(&mut self, tenant: TenantId, now: f64, latency_s: f64) {
        let _ = tenant;
        self.observe(now, latency_s);
    }

    /// Tenant-routed batch feedback (formed batches are tenant-pure, so a
    /// batch's engine wait belongs to exactly one tenant). Tenant-blind
    /// policies fold it into the global
    /// [`observe_batch`](Self::observe_batch).
    fn observe_batch_for(
        &mut self,
        tenant: TenantId,
        now: f64,
        batch_len: usize,
        engine_wait_s: f64,
    ) {
        let _ = tenant;
        self.observe_batch(now, batch_len, engine_wait_s);
    }

    /// The dispatch chunk cap the policy steers, if any — how many queries
    /// of one batch the [`EngineScheduler`](crate::dispatch::EngineScheduler)
    /// may commit the serial engine to per dispatch. `None` (the default, and
    /// every static policy's answer) defers to the service-level cap
    /// ([`ServiceConfig::max_chunk`](crate::service::ServiceConfig)). The
    /// service clamps the answer to that cap: a policy may trade amortization
    /// *below* the operator's isolation bound, never above it.
    fn chunk(&self) -> Option<usize> {
        None
    }

    /// The chunk cap `tenant`'s batches should be split at right now.
    /// Tenant-blind policies answer with the global [`chunk`](Self::chunk).
    fn chunk_for(&self, tenant: TenantId) -> Option<usize> {
        let _ = tenant;
        self.chunk()
    }
}

/// The static policy: always the same close conditions.
#[derive(Debug, Clone, Copy)]
pub struct FixedPolicy(pub BatchFormerConfig);

impl BatchPolicy for FixedPolicy {
    fn name(&self) -> &str {
        "fixed"
    }

    fn current(&self) -> BatchFormerConfig {
        self.0
    }
}

/// Tuning knobs of the [`SloController`].
#[derive(Debug, Clone, Copy)]
pub struct SloControllerConfig {
    /// The p99 latency target in simulated seconds.
    pub slo_p99_s: f64,
    /// Simulated seconds between control decisions.
    pub adjust_interval_s: f64,
    /// Bounds on the batching window the controller may choose.
    pub min_delay_s: f64,
    /// Upper bound on the batching window.
    pub max_delay_s: f64,
    /// Bounds on the batch-size cap the controller may choose.
    pub min_batch: usize,
    /// Upper bound on the batch-size cap.
    pub max_batch: usize,
    /// Multiplicative back-off applied when the window's p99 exceeds the SLO
    /// while the engine is keeping up (in `(0, 1)`).
    pub decrease_factor: f64,
    /// Multiplicative window growth applied when the p99 exceeds the SLO
    /// *because the engine is saturated* — wider windows mean bigger batches,
    /// which is what raises a PIM engine's capacity (must be > 1).
    pub saturated_growth: f64,
    /// Additive window growth (seconds) applied when p99 is below
    /// `grow_below` × SLO.
    pub increase_delay_s: f64,
    /// Additive batch-cap growth applied together with the window growth.
    pub increase_batch: usize,
    /// Fraction of the SLO below which the controller considers itself safe
    /// to grow (the AIMD guard band; in `(0, 1)`).
    pub grow_below: f64,
    /// The engine counts as saturated when the average time closed batches
    /// spend queued behind it exceeds this multiple of the current window.
    pub saturation_wait_ratio: f64,
    /// Bounds on the dispatch chunk cap the controller may choose. The
    /// chunk is steered like the window (saturated misses grow it — bigger
    /// chunks amortize the per-dispatch overheads — unsaturated misses
    /// shrink it, comfort grows it additively), so `max_chunk` is the most
    /// head-of-line delay this tenant may ever inflict per dispatch.
    pub min_chunk: usize,
    /// Upper bound on the dispatch chunk cap.
    pub max_chunk: usize,
    /// Additive chunk growth applied together with the window growth.
    pub increase_chunk: usize,
}

impl SloControllerConfig {
    /// Defaults for a given p99 target: decisions every SLO interval, window
    /// bounded by `[slo/100, slo/2]`, batches in `[1, 1024]`, halve on miss,
    /// grow by `slo/50` while under 70 % of the SLO.
    pub fn for_slo(slo_p99_s: f64) -> Self {
        assert!(
            slo_p99_s > 0.0 && slo_p99_s.is_finite(),
            "the SLO must be a positive time"
        );
        Self {
            slo_p99_s,
            adjust_interval_s: slo_p99_s,
            min_delay_s: slo_p99_s / 100.0,
            max_delay_s: slo_p99_s / 2.0,
            min_batch: 1,
            max_batch: 1024,
            decrease_factor: 0.5,
            saturated_growth: 2.0,
            increase_delay_s: slo_p99_s / 50.0,
            increase_batch: 32,
            grow_below: 0.7,
            saturation_wait_ratio: 1.0,
            min_chunk: 8,
            max_chunk: 64,
            increase_chunk: 8,
        }
    }
}

/// Closed-loop AIMD controller steering the batch former toward the largest
/// batching window whose observed p99 still meets the SLO.
///
/// ```
/// use upanns_serve::controller::{BatchPolicy, SloController};
///
/// // Target p99 = 100 ms; the controller starts from the SLO-derived
/// // prior (window = SLO/4) and decides once per SLO interval.
/// let mut controller = SloController::for_slo(0.1);
/// let before = controller.current();
///
/// // One full decision interval of latencies at 10× the SLO while the
/// // engine keeps up (no batch-wait feedback): the window itself must be
/// // the latency, so the controller backs off multiplicatively.
/// for i in 0..50 {
///     controller.observe(0.002 * i as f64, 1.0);
/// }
/// controller.observe(0.2, 1.0); // crosses the decision boundary
///
/// assert_eq!(controller.adjustments(), 1);
/// assert!(controller.current().max_delay_s <= before.max_delay_s / 2.0 + 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct SloController {
    config: SloControllerConfig,
    current: BatchFormerConfig,
    /// The dispatch chunk cap, steered alongside the window.
    chunk: usize,
    /// Latencies observed since the last control decision.
    window: Vec<f64>,
    /// Engine-queue waits of batches dispatched since the last decision.
    waits: Vec<f64>,
    next_decision_at: f64,
    adjustments: usize,
}

impl SloController {
    /// A controller starting from `initial` close conditions.
    ///
    /// # Panics
    /// Panics if the config's bounds are empty or its factors are out of
    /// range.
    pub fn new(config: SloControllerConfig, initial: BatchFormerConfig) -> Self {
        assert!(
            config.min_delay_s >= 0.0 && config.min_delay_s <= config.max_delay_s,
            "empty delay range"
        );
        assert!(
            config.min_batch >= 1 && config.min_batch <= config.max_batch,
            "empty batch range"
        );
        assert!(
            config.decrease_factor > 0.0 && config.decrease_factor < 1.0,
            "decrease factor must be in (0, 1)"
        );
        assert!(
            config.saturated_growth > 1.0 && config.saturated_growth.is_finite(),
            "saturated growth must exceed 1"
        );
        assert!(
            config.saturation_wait_ratio > 0.0 && config.saturation_wait_ratio.is_finite(),
            "saturation wait ratio must be positive"
        );
        assert!(
            config.grow_below > 0.0 && config.grow_below < 1.0,
            "grow threshold must be in (0, 1)"
        );
        assert!(
            config.adjust_interval_s > 0.0 && config.adjust_interval_s.is_finite(),
            "decision interval must be a positive time"
        );
        assert!(
            config.min_chunk >= 1 && config.min_chunk <= config.max_chunk,
            "empty chunk range"
        );
        let current = BatchFormerConfig {
            max_batch: initial.max_batch.clamp(config.min_batch, config.max_batch),
            max_delay_s: initial.max_delay_s.clamp(config.min_delay_s, config.max_delay_s),
        };
        Self {
            config,
            current,
            // Start mid-range: room to amortize up and to isolate down.
            chunk: (config.min_chunk + config.max_chunk) / 2,
            window: Vec::new(),
            waits: Vec::new(),
            next_decision_at: config.adjust_interval_s,
            adjustments: 0,
        }
    }

    /// A controller for the given SLO starting from the SLO-derived prior:
    /// a window of a quarter of the SLO. Starting wide-ish is deliberate —
    /// it is safe for throughput on batch-hungry (PIM) engines, avoids the
    /// cold-start collapse a latency-lean initial window causes there, and
    /// the controller shrinks it in one multiplicative step if the window
    /// itself turns out to be the latency.
    pub fn for_slo(slo_p99_s: f64) -> Self {
        let config = SloControllerConfig::for_slo(slo_p99_s);
        let initial = BatchFormerConfig {
            max_batch: 256,
            max_delay_s: slo_p99_s / 4.0,
        };
        Self::new(config, initial)
    }

    /// The controller's tuning knobs.
    pub fn config(&self) -> &SloControllerConfig {
        &self.config
    }

    /// Nearest-rank p99 of the current observation window (`None` while the
    /// window is empty).
    fn window_p99(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        let mut sorted = self.window.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = (0.99 * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank])
    }

    /// Mean engine-queue wait of the batches dispatched in this window.
    fn window_mean_wait(&self) -> f64 {
        if self.waits.is_empty() {
            0.0
        } else {
            self.waits.iter().sum::<f64>() / self.waits.len() as f64
        }
    }

    /// One control step against the window's p99 and the engine-wait signal.
    /// The dispatch chunk cap moves with the window: every branch that
    /// widens the window also grows the chunk (amortization per dispatch)
    /// and every branch that shrinks it shrinks the chunk too (less serial
    /// commitment while the window itself is the latency).
    fn decide(&mut self) {
        let Some(p99) = self.window_p99() else {
            self.waits.clear();
            return;
        };
        let before = self.current;
        if p99 > self.config.slo_p99_s {
            let saturated = self.window_mean_wait()
                > self.config.saturation_wait_ratio * self.current.max_delay_s;
            if saturated {
                // Batches queue behind a busy engine: the batches are too
                // small to amortize the per-batch overheads, so a narrower
                // window would make the miss *worse*. Widen multiplicatively
                // to escape the collapse quickly.
                self.current.max_delay_s = (self.current.max_delay_s
                    * self.config.saturated_growth)
                    .min(self.config.max_delay_s);
                self.current.max_batch = ((self.current.max_batch as f64
                    * self.config.saturated_growth)
                    .round() as usize)
                    .min(self.config.max_batch);
                self.chunk = ((self.chunk as f64 * self.config.saturated_growth).round()
                    as usize)
                    .min(self.config.max_chunk);
            } else {
                // The engine keeps up; the batching window itself is the
                // latency. Back off multiplicatively — recovers in one step.
                self.current.max_delay_s = (self.current.max_delay_s
                    * self.config.decrease_factor)
                    .max(self.config.min_delay_s);
                self.current.max_batch = ((self.current.max_batch as f64
                    * self.config.decrease_factor)
                    .round() as usize)
                    .max(self.config.min_batch);
                self.chunk = ((self.chunk as f64 * self.config.decrease_factor).round()
                    as usize)
                    .max(self.config.min_chunk);
            }
        } else if p99 < self.config.grow_below * self.config.slo_p99_s {
            // Comfortably under: grow additively — harvest batch
            // amortization gradually without overshooting the SLO.
            self.current.max_delay_s =
                (self.current.max_delay_s + self.config.increase_delay_s).min(self.config.max_delay_s);
            self.current.max_batch =
                (self.current.max_batch + self.config.increase_batch).min(self.config.max_batch);
            self.chunk = (self.chunk + self.config.increase_chunk).min(self.config.max_chunk);
        }
        // Chunk-only moves are not counted: `adjustments` keeps its
        // original meaning (close-condition changes), and the chunk knob is
        // inert when the service runs whole-batch dispatch — a policy
        // cannot know which, so it must not report phantom activity.
        if self.current.max_batch != before.max_batch
            || self.current.max_delay_s != before.max_delay_s
        {
            self.adjustments += 1;
        }
        self.window.clear();
        self.waits.clear();
    }

    /// The dispatch chunk cap the controller currently answers
    /// [`BatchPolicy::chunk`] with.
    pub fn current_chunk(&self) -> usize {
        self.chunk
    }
}

impl BatchPolicy for SloController {
    fn name(&self) -> &str {
        "adaptive-slo"
    }

    fn current(&self) -> BatchFormerConfig {
        self.current
    }

    fn observe(&mut self, now: f64, latency_s: f64) {
        if latency_s.is_finite() && latency_s >= 0.0 {
            self.window.push(latency_s);
        }
        if now >= self.next_decision_at {
            self.decide();
            // Skip idle intervals instead of replaying a decision per elapsed
            // interval: the next decision is one interval after *now*.
            self.next_decision_at = now + self.config.adjust_interval_s;
        }
    }

    fn observe_batch(&mut self, _now: f64, _batch_len: usize, engine_wait_s: f64) {
        if engine_wait_s.is_finite() && engine_wait_s >= 0.0 {
            self.waits.push(engine_wait_s);
        }
    }

    fn adjustments(&self) -> usize {
        self.adjustments
    }

    fn chunk(&self) -> Option<usize> {
        Some(self.chunk)
    }
}

/// One [`SloController`] per tenant: each tenant's batching window is steered
/// by its **own** SLO from its **own** completions, so a tight-SLO tenant's
/// narrow window and a loose-SLO tenant's wide, amortization-harvesting
/// window coexist on one engine. Tenants without a controller (no SLO of
/// their own) run the bank's default close conditions.
#[derive(Debug, Clone, Default)]
pub struct ControllerBank {
    default_config: BatchFormerConfig,
    entries: Vec<(TenantId, SloController)>,
}

impl ControllerBank {
    /// An empty bank whose unknown tenants run `default_config`.
    pub fn new(default_config: BatchFormerConfig) -> Self {
        Self {
            default_config,
            entries: Vec::new(),
        }
    }

    /// Adds (or replaces) `tenant`'s controller.
    pub fn with_controller(mut self, tenant: TenantId, controller: SloController) -> Self {
        match self.entries.iter_mut().find(|(id, _)| *id == tenant) {
            Some((_, c)) => *c = controller,
            None => self.entries.push((tenant, controller)),
        }
        self
    }

    /// Builds a bank from a stream's tenant profiles: every tenant with its
    /// own SLO gets [`SloController::for_slo`]; tenants without one share
    /// `default_config`.
    pub fn for_profiles(profiles: &[TenantProfile], default_config: BatchFormerConfig) -> Self {
        let mut bank = Self::new(default_config);
        for p in profiles {
            if let Some(slo) = p.slo_p99_s {
                bank = bank.with_controller(p.id, SloController::for_slo(slo));
            }
        }
        bank
    }

    /// The controller steering `tenant`, if it has one.
    pub fn controller(&self, tenant: TenantId) -> Option<&SloController> {
        self.entries
            .iter()
            .find(|(id, _)| *id == tenant)
            .map(|(_, c)| c)
    }

    /// Number of per-tenant controllers in the bank.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the bank holds no controllers.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl BatchPolicy for ControllerBank {
    fn name(&self) -> &str {
        "adaptive-tenant"
    }

    /// The *default* close conditions (tenants without a controller). The
    /// per-tenant answers come from [`current_for`](Self::current_for).
    fn current(&self) -> BatchFormerConfig {
        self.default_config
    }

    fn current_for(&self, tenant: TenantId) -> BatchFormerConfig {
        self.controller(tenant)
            .map_or(self.default_config, |c| c.current())
    }

    /// Tenants with their own controller run its steered chunk cap; the
    /// rest defer to the service-level default.
    fn chunk_for(&self, tenant: TenantId) -> Option<usize> {
        self.controller(tenant).and_then(BatchPolicy::chunk)
    }

    fn observe_for(&mut self, tenant: TenantId, now: f64, latency_s: f64) {
        if let Some((_, c)) = self.entries.iter_mut().find(|(id, _)| *id == tenant) {
            c.observe(now, latency_s);
        }
    }

    fn observe_batch_for(
        &mut self,
        tenant: TenantId,
        now: f64,
        batch_len: usize,
        engine_wait_s: f64,
    ) {
        if let Some((_, c)) = self.entries.iter_mut().find(|(id, _)| *id == tenant) {
            c.observe_batch(now, batch_len, engine_wait_s);
        }
    }

    /// Total adjustments across every tenant's controller.
    fn adjustments(&self) -> usize {
        self.entries.iter().map(|(_, c)| c.adjustments()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(slo: f64) -> SloController {
        SloController::for_slo(slo)
    }

    #[test]
    fn fixed_policy_never_moves() {
        let config = BatchFormerConfig {
            max_batch: 64,
            max_delay_s: 0.01,
        };
        let mut policy = FixedPolicy(config);
        for i in 0..100 {
            policy.observe(i as f64, 10.0); // terrible latencies
        }
        assert_eq!(policy.current().max_batch, 64);
        assert_eq!(policy.current().max_delay_s, 0.01);
        assert_eq!(policy.adjustments(), 0);
        assert_eq!(policy.name(), "fixed");
    }

    #[test]
    fn misses_shrink_the_window_multiplicatively() {
        // Start mid-range so there is room to back off.
        let mut c = SloController::new(
            SloControllerConfig::for_slo(0.1),
            BatchFormerConfig {
                max_batch: 128,
                max_delay_s: 0.04,
            },
        );
        let delay0 = c.current().max_delay_s;
        let batch0 = c.current().max_batch;
        // One full interval of latencies far above the SLO.
        for i in 0..50 {
            c.observe(0.002 * i as f64, 1.0);
        }
        c.observe(0.2, 1.0); // crosses the decision boundary
        assert!(c.current().max_delay_s <= delay0 * 0.5 + 1e-12);
        assert!(c.current().max_batch <= batch0.div_ceil(2) + 1);
        assert_eq!(c.adjustments(), 1);
    }

    #[test]
    fn saturated_misses_widen_the_window_instead_of_shrinking_it() {
        // Same miss pattern as the shrink test, but batches are reported
        // stuck behind a busy engine: the fix is a *wider* window.
        let mut c = SloController::new(
            SloControllerConfig::for_slo(0.1),
            BatchFormerConfig {
                max_batch: 32,
                max_delay_s: 0.004,
            },
        );
        let delay0 = c.current().max_delay_s;
        let batch0 = c.current().max_batch;
        for i in 0..50 {
            let t = 0.002 * i as f64;
            c.observe_batch(t, 2, 1.0); // waited 1 s behind the engine
            c.observe(t, 1.0); // 10× the SLO
        }
        c.observe(0.2, 1.0);
        assert!(
            c.current().max_delay_s >= delay0 * 2.0 - 1e-12,
            "window should widen under saturation: {} vs {}",
            c.current().max_delay_s,
            delay0
        );
        assert!(c.current().max_batch >= batch0 * 2);
        assert_eq!(c.adjustments(), 1);
    }

    #[test]
    fn comfortable_latencies_grow_the_window_additively() {
        let mut c = controller(0.1);
        let delay0 = c.current().max_delay_s;
        for i in 0..50 {
            c.observe(0.002 * i as f64, 0.01); // 10 % of the SLO
        }
        c.observe(0.2, 0.01);
        let grown = c.current().max_delay_s;
        assert!(grown > delay0, "should grow: {grown} vs {delay0}");
        assert!(
            (grown - delay0 - c.config().increase_delay_s).abs() < 1e-12,
            "growth is additive"
        );
    }

    #[test]
    fn latencies_inside_the_guard_band_hold_steady() {
        let mut c = controller(0.1);
        let before = c.current();
        for i in 0..50 {
            c.observe(0.002 * i as f64, 0.09); // 90 % of SLO: no miss, no growth
        }
        c.observe(0.2, 0.09);
        assert_eq!(c.current().max_batch, before.max_batch);
        assert_eq!(c.current().max_delay_s, before.max_delay_s);
        assert_eq!(c.adjustments(), 0);
    }

    #[test]
    fn bounds_are_respected_under_sustained_pressure() {
        let mut c = controller(0.1);
        // Sustained misses: must stop at min bounds.
        for interval in 0..64 {
            for i in 0..10 {
                c.observe(interval as f64 + 0.01 * i as f64, 5.0);
            }
        }
        assert!(c.current().max_delay_s >= c.config().min_delay_s - 1e-15);
        assert!(c.current().max_batch >= c.config().min_batch);
        // Sustained comfort: must stop at max bounds.
        let mut g = controller(0.1);
        for interval in 0..1000 {
            for i in 0..10 {
                g.observe(interval as f64 + 0.01 * i as f64, 1e-4);
            }
        }
        assert!(g.current().max_delay_s <= g.config().max_delay_s + 1e-15);
        assert!(g.current().max_batch <= g.config().max_batch);
    }

    #[test]
    fn degenerate_observations_are_ignored() {
        let mut c = controller(0.1);
        let before = c.current();
        for i in 0..50 {
            c.observe(0.002 * i as f64, f64::NAN);
            c.observe(0.002 * i as f64, -1.0);
        }
        c.observe(0.2, f64::INFINITY);
        // The window held nothing valid, so no decision was taken.
        assert_eq!(c.current().max_batch, before.max_batch);
        assert_eq!(c.current().max_delay_s, before.max_delay_s);
        assert_eq!(c.adjustments(), 0);
    }

    #[test]
    fn initial_config_is_clamped_into_bounds() {
        let cfg = SloControllerConfig::for_slo(0.1);
        let c = SloController::new(
            cfg,
            BatchFormerConfig {
                max_batch: 1_000_000,
                max_delay_s: 99.0,
            },
        );
        assert_eq!(c.current().max_batch, cfg.max_batch);
        assert_eq!(c.current().max_delay_s, cfg.max_delay_s);
    }

    #[test]
    #[should_panic(expected = "positive time")]
    fn non_positive_slo_is_rejected() {
        let _ = SloControllerConfig::for_slo(0.0);
    }

    #[test]
    fn chunk_cap_is_steered_with_the_window() {
        // Unsaturated misses shrink the chunk alongside the window...
        let mut c = controller(0.1);
        let chunk0 = c.current_chunk();
        assert!(chunk0 >= c.config().min_chunk && chunk0 <= c.config().max_chunk);
        for i in 0..50 {
            c.observe(0.002 * i as f64, 1.0);
        }
        c.observe(0.2, 1.0);
        assert!(
            c.current_chunk() <= chunk0.div_ceil(2) + 1,
            "chunk should shrink with the window: {} vs {}",
            c.current_chunk(),
            chunk0
        );
        // ...saturated misses grow it (amortization per dispatch)...
        let mut s = controller(0.1);
        let chunk0 = s.current_chunk();
        for i in 0..50 {
            let t = 0.002 * i as f64;
            s.observe_batch(t, 2, 1.0);
            s.observe(t, 1.0);
        }
        s.observe(0.2, 1.0);
        assert!(s.current_chunk() >= (chunk0 * 2).min(s.config().max_chunk));
        // ...and sustained pressure in either direction stops at the bounds.
        for interval in 0..64 {
            for i in 0..10 {
                c.observe(interval as f64 + 0.01 * i as f64, 5.0);
            }
        }
        assert_eq!(c.current_chunk(), c.config().min_chunk);
        assert_eq!(c.chunk(), Some(c.config().min_chunk));
        // Static policies steer no chunk at all.
        assert_eq!(FixedPolicy(BatchFormerConfig::default()).chunk(), None);
        assert_eq!(
            FixedPolicy(BatchFormerConfig::default()).chunk_for(TenantId(1)),
            None
        );
    }

    #[test]
    fn bank_routes_chunks_to_owned_tenants_only() {
        let bank = ControllerBank::new(BatchFormerConfig::default())
            .with_controller(TenantId(1), controller(0.1));
        assert!(bank.chunk_for(TenantId(1)).is_some());
        assert_eq!(bank.chunk_for(TenantId(2)), None, "no controller, no chunk");
        assert_eq!(bank.chunk(), None, "the bank's global answer is the default");
    }

    #[test]
    fn bank_routes_feedback_to_the_owning_tenant_only() {
        let mut bank = ControllerBank::new(BatchFormerConfig::default())
            .with_controller(TenantId(1), controller(0.1))
            .with_controller(TenantId(2), controller(10.0));
        assert_eq!(bank.name(), "adaptive-tenant");
        assert_eq!(bank.len(), 2);
        let t1_before = bank.current_for(TenantId(1));
        let t2_before = bank.current_for(TenantId(2));
        assert!(
            t1_before.max_delay_s < t2_before.max_delay_s,
            "SLO-derived priors scale with the SLO"
        );
        // A full interval of unsaturated misses for tenant 1 only.
        for i in 0..50 {
            bank.observe_for(TenantId(1), 0.002 * i as f64, 1.0);
        }
        bank.observe_for(TenantId(1), 0.2, 1.0);
        assert!(
            bank.current_for(TenantId(1)).max_delay_s < t1_before.max_delay_s,
            "tenant 1's window shrank"
        );
        assert_eq!(
            bank.current_for(TenantId(2)).max_delay_s,
            t2_before.max_delay_s,
            "tenant 2's window is untouched by tenant 1's misses"
        );
        assert_eq!(bank.adjustments(), 1, "adjustments sum across the bank");
        // Unknown tenants run (and keep) the default config.
        assert_eq!(
            bank.current_for(TenantId(9)).max_batch,
            BatchFormerConfig::default().max_batch
        );
        bank.observe_for(TenantId(9), 1.0, 99.0); // ignored, not a crash
        assert_eq!(bank.adjustments(), 1);
    }

    #[test]
    fn bank_builds_from_stream_profiles() {
        use annkit::workload::TenantProfile;
        let profiles = vec![
            TenantProfile {
                id: TenantId(1),
                name: "tight".to_string(),
                weight: 2,
                slo_p99_s: Some(0.5),
            },
            TenantProfile {
                id: TenantId(2),
                name: "no-slo".to_string(),
                weight: 1,
                slo_p99_s: None,
            },
        ];
        let default = BatchFormerConfig {
            max_batch: 7,
            max_delay_s: 0.25,
        };
        let bank = ControllerBank::for_profiles(&profiles, default);
        assert_eq!(bank.len(), 1, "only SLO-carrying tenants get controllers");
        assert!(bank.controller(TenantId(1)).is_some());
        assert!(bank.controller(TenantId(2)).is_none());
        assert_eq!(bank.current_for(TenantId(2)).max_batch, 7);
        assert!(!bank.is_empty());
    }
}
