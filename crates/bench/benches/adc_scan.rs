//! Criterion microbenchmark of the ADC distance-calculation inner loop —
//! the operation that dominates billion-scale IVFPQ (Figure 1 / Figure 19).
//!
//! Measures the actual (host) throughput of the LUT scan over packed PQ codes
//! at several code lengths `m`, plus the co-occurrence-aware decode path.

use annkit::lut::LookupTable;
use annkit::pq::ProductQuantizer;
use annkit::synthetic::SyntheticSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use upanns::cooccurrence::{mine_cluster_combos, MiningParams};
use upanns::encoding::CaeList;

fn bench_adc_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("adc_scan");
    group.sample_size(20);
    for &(m, dim) in &[(8usize, 64usize), (16, 128), (20, 100)] {
        let data = SyntheticSpec::sift_like(3_000)
            .with_clusters(8)
            .with_seed(1)
            .generate();
        // Reuse the SIFT-like generator but re-train PQ at the requested
        // (dim, m) by slicing/padding dimensions via a fresh dataset.
        let data = if dim == data.dim() {
            data
        } else {
            let mut ds = annkit::vector::Dataset::new(dim);
            for v in data.iter() {
                let row: Vec<f32> = (0..dim).map(|i| v[i % v.len()]).collect();
                ds.push(&row);
            }
            ds
        };
        let pq = ProductQuantizer::train(&data, m, 3);
        let codes: Vec<Vec<u8>> = (0..2_000).map(|i| pq.encode(data.vector(i))).collect();
        let packed = annkit::pq::pack_codes(&codes, m);
        let lut = LookupTable::build(&pq, data.vector(0));

        group.throughput(Throughput::Elements(2_000));
        group.bench_with_input(BenchmarkId::new("plain_lut_scan", m), &m, |b, _| {
            b.iter(|| std::hint::black_box(lut.adc_scan(&packed)));
        });

        // Pinned-backend variants: `simd` is the best runtime-detected
        // backend (AVX2 gathers where available), `scalar` the portable
        // blocked fallback. Both names must exist on every machine so the
        // committed BENCH_criterion.json name check stays portable.
        let mut out = Vec::new();
        for (variant, backend) in [
            ("plain_lut_scan_simd", annkit::simd::detect()),
            ("plain_lut_scan_scalar", annkit::simd::Backend::Scalar),
        ] {
            group.bench_with_input(BenchmarkId::new(variant, m), &m, |b, _| {
                b.iter(|| {
                    lut.adc_scan_with(backend, &packed, &mut out);
                    std::hint::black_box(out.last().copied())
                });
            });
        }

        let combos = mine_cluster_combos(&packed, m, &MiningParams::default());
        let cae = CaeList::encode(&packed, m, &combos);
        let sums = combos.partial_sums(&lut);
        group.bench_with_input(BenchmarkId::new("cae_scan", m), &m, |b, _| {
            b.iter(|| {
                let mut total = 0.0f32;
                for i in 0..cae.len() {
                    total += cae.adc_distance(i, &lut, &sums);
                }
                std::hint::black_box(total)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adc_scan);
criterion_main!(benches);
