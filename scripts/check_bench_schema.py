#!/usr/bin/env python3
"""Validate the committed bench records against their schemas.

Usage:
    check_bench_schema.py BENCH_serving.json BENCH_runtime.json ...

Each file is dispatched on its top-level "schema" tag:

* ``upanns-serving-bench-v4`` — the discrete-event replay record written by
  ``serve --json`` (default replay runtime).
* ``upanns-runtime-bench-v1`` — the threaded-runtime sweep written by
  ``serve --runtime threaded --json``.

Checks are structural (required keys, types, row shapes) plus the
invariants a record must never violate to be worth committing:

* every runtime row conserves queries (``lost == 0``, ``duplicated == 0``,
  ``completed + shed == num_queries``);
* counters are non-negative, fractions live in [0, 1];
* the runtime sweep contains both workloads and more than one worker count
  (otherwise it cannot show scaling).

Exit status 0 when every file validates; 1 with a per-file message
otherwise. This replaces the old inline ``python3 -m json.tool`` CI calls,
which only proved the files were JSON.
"""

import json
import sys

SERVING_SCHEMA = "upanns-serving-bench-v4"
RUNTIME_SCHEMA = "upanns-runtime-bench-v1"

SERVING_ROW_KEYS = {
    "name", "workload", "policy", "sustained_qps", "p50_ms", "p99_ms",
    "mean_ms", "slo_miss_fraction", "meets_slo", "all_tenants_meet_slo",
    "completed", "shed", "cache_hit_rate", "batches", "mean_batch_size",
    "dispatched_chunks", "mean_chunk_size", "final_max_batch",
    "final_max_delay_ms", "controller_adjustments", "engine_busy_s",
    "tenants",
}

RUNTIME_ROW_KEYS = {
    "engine", "workload", "mode", "policy", "workers", "offered_qps",
    "num_queries", "sustained_qps", "p50_ms", "p99_ms", "mean_ms",
    "completed", "shed", "lost", "duplicated", "cache_hit_rate",
    "dispatched_chunks", "busy_modeled_s", "makespan_s",
    "emulated_utilization", "tenants",
}

RUNTIME_TENANT_KEYS = {
    "tenant", "slo_ms", "completed", "shed", "p50_ms", "p99_ms",
    "slo_miss_fraction", "meets_slo",
}


class SchemaError(Exception):
    pass


def require(cond, message):
    if not cond:
        raise SchemaError(message)


def check_keys(obj, expected, label):
    require(isinstance(obj, dict), f"{label} is not an object")
    missing = expected - set(obj)
    extra = set(obj) - expected
    require(not missing, f"{label} is missing keys: {sorted(missing)}")
    require(not extra, f"{label} has unexpected keys: {sorted(extra)}")


def check_fraction(value, label):
    require(isinstance(value, (int, float)) and 0.0 <= value <= 1.0,
            f"{label} = {value!r} is not a fraction in [0, 1]")


def check_count(value, label):
    require(isinstance(value, int) and value >= 0,
            f"{label} = {value!r} is not a non-negative integer")


def check_serving(doc):
    require(set(doc) == {"schema", "config", "engines"},
            f"top-level keys {sorted(doc)} != ['config', 'engines', 'schema']")
    require(isinstance(doc["config"], dict) and doc["config"],
            "config block is missing or empty")
    rows = doc["engines"]
    require(isinstance(rows, list) and rows, "engines list is missing or empty")
    for i, row in enumerate(rows):
        label = f"engines[{i}]"
        check_keys(row, SERVING_ROW_KEYS, label)
        require(row["workload"] in ("single", "multi"),
                f"{label}.workload = {row['workload']!r}")
        for key in ("completed", "shed", "batches", "dispatched_chunks"):
            check_count(row[key], f"{label}.{key}")
        for key in ("slo_miss_fraction", "cache_hit_rate"):
            check_fraction(row[key], f"{label}.{key}")
        require(isinstance(row["tenants"], list), f"{label}.tenants is not a list")
    workloads = {r["workload"] for r in rows}
    require(workloads == {"single", "multi"},
            f"expected single and multi workload rows, got {sorted(workloads)}")


def check_runtime(doc):
    require(set(doc) == {"schema", "config", "rows"},
            f"top-level keys {sorted(doc)} != ['config', 'rows', 'schema']")
    require(isinstance(doc["config"], dict) and doc["config"],
            "config block is missing or empty")
    rows = doc["rows"]
    require(isinstance(rows, list) and rows, "rows list is missing or empty")
    for i, row in enumerate(rows):
        label = f"rows[{i}]"
        check_keys(row, RUNTIME_ROW_KEYS, label)
        require(row["workload"] in ("single", "multi"),
                f"{label}.workload = {row['workload']!r}")
        require(row["mode"] in ("wall", "logical"), f"{label}.mode = {row['mode']!r}")
        for key in ("completed", "shed", "lost", "duplicated", "workers",
                    "num_queries", "dispatched_chunks"):
            check_count(row[key], f"{label}.{key}")
        require(row["workers"] >= 1, f"{label}.workers = {row['workers']}")
        # The conservation contract: a committed record proving the runtime
        # dropped or double-answered queries must never land.
        require(row["lost"] == 0, f"{label} lost {row['lost']} queries")
        require(row["duplicated"] == 0,
                f"{label} duplicated {row['duplicated']} queries")
        require(row["completed"] + row["shed"] == row["num_queries"],
                f"{label}: completed {row['completed']} + shed {row['shed']} "
                f"!= offered {row['num_queries']}")
        check_fraction(row["cache_hit_rate"], f"{label}.cache_hit_rate")
        require(row["makespan_s"] > 0, f"{label}.makespan_s = {row['makespan_s']}")
        for j, t in enumerate(row["tenants"]):
            tlabel = f"{label}.tenants[{j}]"
            check_keys(t, RUNTIME_TENANT_KEYS, tlabel)
            check_count(t["completed"], f"{tlabel}.completed")
            check_count(t["shed"], f"{tlabel}.shed")
            check_fraction(t["slo_miss_fraction"], f"{tlabel}.slo_miss_fraction")
        if row["workload"] == "multi":
            require(len(row["tenants"]) >= 2,
                    f"{label} is a multi-tenant row with {len(row['tenants'])} tenants")
    workloads = {r["workload"] for r in rows}
    require(workloads == {"single", "multi"},
            f"expected single and multi workload rows, got {sorted(workloads)}")
    worker_counts = {r["workers"] for r in rows}
    require(len(worker_counts) > 1,
            f"a one-worker-count sweep ({sorted(worker_counts)}) cannot show scaling")


CHECKERS = {
    SERVING_SCHEMA: check_serving,
    RUNTIME_SCHEMA: check_runtime,
}


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 1
    failed = False
    for path in argv[1:]:
        try:
            with open(path) as f:
                doc = json.load(f)
            schema = doc.get("schema")
            checker = CHECKERS.get(schema)
            if checker is None:
                raise SchemaError(
                    f"unknown schema tag {schema!r} (known: {sorted(CHECKERS)})")
            checker(doc)
            print(f"{path}: ok ({schema})")
        except (OSError, json.JSONDecodeError, SchemaError) as e:
            print(f"{path}: FAIL: {e}")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
