//! Reading and writing the `fvecs` / `bvecs` / `ivecs` dataset formats.
//!
//! The public billion-scale ANNS datasets (SIFT1B, DEEP1B, SPACEV1B ground
//! truth, etc.) ship in these simple framed formats: each vector is stored as
//! a little-endian `u32` dimension followed by `dim` components (`f32` for
//! fvecs, `u8` for bvecs, `i32` for ivecs). Supporting them means a user with
//! the real datasets can feed them straight into this reproduction.

use crate::error::AnnError;
use crate::vector::Dataset;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads an `fvecs` file into a [`Dataset`].
pub fn read_fvecs(path: impl AsRef<Path>) -> Result<Dataset, AnnError> {
    let file = File::open(path)?;
    read_fvecs_from(BufReader::new(file))
}

/// Reads `fvecs`-framed vectors from any reader.
pub fn read_fvecs_from(mut reader: impl Read) -> Result<Dataset, AnnError> {
    let mut dataset: Option<Dataset> = None;
    while let Some(d) = read_u32(&mut reader)? {
        let dim = d as usize;
        validate_dim(dim, &dataset)?;
        let mut buf = vec![0u8; dim * 4];
        reader.read_exact(&mut buf).map_err(truncated)?;
        let row: Vec<f32> = buf
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        dataset.get_or_insert_with(|| Dataset::new(dim)).push(&row);
    }
    dataset.ok_or_else(|| AnnError::MalformedFile {
        reason: "file contains no vectors".into(),
    })
}

/// Reads a `bvecs` file (byte components) into a [`Dataset`] of `f32`.
pub fn read_bvecs(path: impl AsRef<Path>) -> Result<Dataset, AnnError> {
    let file = File::open(path)?;
    read_bvecs_from(BufReader::new(file))
}

/// Reads `bvecs`-framed vectors from any reader.
pub fn read_bvecs_from(mut reader: impl Read) -> Result<Dataset, AnnError> {
    let mut dataset: Option<Dataset> = None;
    while let Some(d) = read_u32(&mut reader)? {
        let dim = d as usize;
        validate_dim(dim, &dataset)?;
        let mut buf = vec![0u8; dim];
        reader.read_exact(&mut buf).map_err(truncated)?;
        let row: Vec<f32> = buf.iter().map(|&b| b as f32).collect();
        dataset.get_or_insert_with(|| Dataset::new(dim)).push(&row);
    }
    dataset.ok_or_else(|| AnnError::MalformedFile {
        reason: "file contains no vectors".into(),
    })
}

/// Reads an `ivecs` file (e.g. ground-truth neighbor ids) as a list of rows.
pub fn read_ivecs(path: impl AsRef<Path>) -> Result<Vec<Vec<u32>>, AnnError> {
    let file = File::open(path)?;
    read_ivecs_from(BufReader::new(file))
}

/// Reads `ivecs`-framed rows from any reader.
pub fn read_ivecs_from(mut reader: impl Read) -> Result<Vec<Vec<u32>>, AnnError> {
    let mut rows = Vec::new();
    while let Some(d) = read_u32(&mut reader)? {
        let dim = d as usize;
        if dim == 0 || dim > 1 << 24 {
            return Err(AnnError::MalformedFile {
                reason: format!("implausible row length {dim}"),
            });
        }
        let mut buf = vec![0u8; dim * 4];
        reader.read_exact(&mut buf).map_err(truncated)?;
        rows.push(
            buf.chunks_exact(4)
                .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .collect(),
        );
    }
    Ok(rows)
}

/// Writes a [`Dataset`] in `fvecs` format.
pub fn write_fvecs(path: impl AsRef<Path>, data: &Dataset) -> Result<(), AnnError> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    for v in data.iter() {
        w.write_all(&(data.dim() as u32).to_le_bytes())?;
        for &x in v {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Writes ground-truth id rows in `ivecs` format.
pub fn write_ivecs(path: impl AsRef<Path>, rows: &[Vec<u32>]) -> Result<(), AnnError> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    for row in rows {
        w.write_all(&(row.len() as u32).to_le_bytes())?;
        for &x in row {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

fn read_u32(reader: &mut impl Read) -> Result<Option<u32>, AnnError> {
    let mut buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = reader.read(&mut buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None); // clean EOF between records
            }
            return Err(AnnError::MalformedFile {
                reason: "truncated record header".into(),
            });
        }
        filled += n;
    }
    Ok(Some(u32::from_le_bytes(buf)))
}

fn validate_dim(dim: usize, dataset: &Option<Dataset>) -> Result<(), AnnError> {
    if dim == 0 || dim > 1 << 20 {
        return Err(AnnError::MalformedFile {
            reason: format!("implausible vector dimension {dim}"),
        });
    }
    if let Some(ds) = dataset {
        if ds.dim() != dim {
            return Err(AnnError::MalformedFile {
                reason: format!("inconsistent dimensions: {} then {}", ds.dim(), dim),
            });
        }
    }
    Ok(())
}

fn truncated(_: std::io::Error) -> AnnError {
    AnnError::MalformedFile {
        reason: "truncated vector payload".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fvecs_bytes(rows: &[Vec<f32>]) -> Vec<u8> {
        let mut out = Vec::new();
        for r in rows {
            out.extend_from_slice(&(r.len() as u32).to_le_bytes());
            for &x in r {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        out
    }

    #[test]
    fn fvecs_roundtrip_in_memory() {
        let rows = vec![vec![1.0f32, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let bytes = fvecs_bytes(&rows);
        let ds = read_fvecs_from(&bytes[..]).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.vector(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn fvecs_file_roundtrip() {
        let dir = std::env::temp_dir().join("annkit_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.fvecs");
        let ds = Dataset::from_rows(&[vec![0.5f32, -1.5], vec![3.25, 4.75]]);
        write_fvecs(&path, &ds).unwrap();
        let back = read_fvecs(&path).unwrap();
        assert_eq!(back, ds);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bvecs_parses_bytes() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&[10u8, 20, 30, 255]);
        let ds = read_bvecs_from(&bytes[..]).unwrap();
        assert_eq!(ds.dim(), 4);
        assert_eq!(ds.vector(0), &[10.0, 20.0, 30.0, 255.0]);
    }

    #[test]
    fn ivecs_roundtrip() {
        let dir = std::env::temp_dir().join("annkit_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gt.ivecs");
        let rows = vec![vec![1u32, 2, 3], vec![9, 8, 7]];
        write_ivecs(&path, &rows).unwrap();
        let back = read_ivecs(&path).unwrap();
        assert_eq!(back, rows);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_payload() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&1.0f32.to_le_bytes()); // only 1 of 3 floats
        let err = read_fvecs_from(&bytes[..]).unwrap_err();
        assert!(matches!(err, AnnError::MalformedFile { .. }));
    }

    #[test]
    fn rejects_inconsistent_dims() {
        let rows = vec![vec![1.0f32, 2.0], vec![1.0, 2.0, 3.0]];
        let bytes = fvecs_bytes(&rows);
        let err = read_fvecs_from(&bytes[..]).unwrap_err();
        assert!(matches!(err, AnnError::MalformedFile { .. }));
    }

    #[test]
    fn empty_file_is_an_error_for_vectors() {
        let err = read_fvecs_from(&[][..]).unwrap_err();
        assert!(matches!(err, AnnError::MalformedFile { .. }));
        // But an empty ivecs ground-truth file is just an empty list.
        assert!(read_ivecs_from(&[][..]).unwrap().is_empty());
    }
}
