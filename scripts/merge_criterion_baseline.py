#!/usr/bin/env python3
"""Fold the JSONL emitted by the vendored criterion's baseline recorder into
the committed BENCH_criterion.json document.

Usage:
    merge_criterion_baseline.py <records.jsonl> <out.json>
    merge_criterion_baseline.py --check-names <records.jsonl> <committed.json>

The vendored `criterion` appends one JSON object per measured benchmark to
the file named by CRITERION_BASELINE_JSONL (or `--save-baseline <path>`)
while `cargo bench` runs. This script sorts the records into a stable,
parseable document. Wall-clock means vary by machine, so CI verifies the
*names* (bench/group/id triples) against the committed record rather than
the times — adding or removing a benchmark must update the record in-PR.
"""

import json
import sys


def load_records(path):
    records = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    records.sort(key=lambda r: (r["bench"], r["group"], r["id"]))
    return records


def names(records):
    return [(r["bench"], r["group"], r["id"]) for r in records]


def main(argv):
    if len(argv) == 4 and argv[1] == "--check-names":
        fresh = load_records(argv[2])
        with open(argv[3]) as f:
            committed = json.load(f)
        want = names(committed["benches"])
        got = names(fresh)
        if want != got:
            missing = sorted(set(want) - set(got))
            extra = sorted(set(got) - set(want))
            print("benchmark names diverged from the committed record:")
            for n in missing:
                print(f"  missing: {'/'.join(p for p in n if p)}")
            for n in extra:
                print(f"  new:     {'/'.join(p for p in n if p)}")
            print("regenerate and commit BENCH_criterion.json in this PR")
            return 1
        print(f"{len(got)} benchmark names match the committed record")
        return 0

    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    records = load_records(argv[1])
    doc = {
        "schema": "upanns-criterion-bench-v1",
        "note": "mean_seconds are machine-dependent; CI checks names only",
        "benches": records,
    }
    with open(argv[2], "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {len(records)} records to {argv[2]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
