//! # upanns-runtime — the threaded serving runtime and its replay twin
//!
//! Everything below `upanns-serve` in this workspace is a *discrete-event
//! replay*: one thread, a logical clock, perfectly reproducible. This
//! crate is the other half of the story — the same admission / batching /
//! dispatch / caching components assembled into a **real multi-threaded
//! pipeline** (`std::thread` + `mpsc`, no async runtime) that serves a
//! query stream against the wall clock, plus a **deterministic twin mode**
//! that re-runs the identical pipeline against the stream's logical
//! timestamps and is byte-diffed against
//! [`SearchService::replay`](upanns_serve::SearchService::replay) in CI.
//!
//! See [`pipeline`] for the stage/channel topology, the two clocks, the
//! twin contract and the shutdown protocol; see [`report`] for what a run
//! measures. The `serve` binary (this crate's `src/bin/serve.rs`) fronts
//! both the replay benchmark and the threaded runtime.
//!
//! This is the one crate in the workspace allowed to read the wall clock
//! (`std::time::Instant`) — `upanns-lint`'s `no-wall-clock` rule scopes
//! its allowlist to `crates/runtime/` and keeps every model crate banned.
//!
//! ```
//! use annkit::ivf::{IvfPqIndex, IvfPqParams};
//! use annkit::synthetic::SyntheticSpec;
//! use annkit::workload::StreamSpec;
//! use baselines::cpu::CpuFaissEngine;
//! use baselines::engine::QueryOptions;
//! use upanns_serve::FixedPolicy;
//! use upanns_serve::service::ServiceConfig;
//! use upanns_runtime::{run_pipeline, RuntimeConfig};
//!
//! let data = SyntheticSpec::sift_like(400).with_seed(1).generate_with_meta();
//! let index = IvfPqIndex::train(&data.vectors, &IvfPqParams::new(16, 8), 3);
//! let stream = StreamSpec::new(50, 400.0).generate(&data);
//! let config = RuntimeConfig::wall(ServiceConfig::default());
//! let engines: Vec<_> = (0..2).map(|_| CpuFaissEngine::new(&index)).collect();
//! let policy = Box::new(FixedPolicy(config.service.batcher));
//! let report = run_pipeline(engines, &stream, |_| QueryOptions::new(10, 4), policy, config);
//! assert!(report.is_conserving());
//! assert_eq!(report.workers, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pipeline;
pub mod report;

pub use pipeline::{run_pipeline, RuntimeConfig, RuntimeMode};
pub use report::{RuntimeReport, RuntimeTenantRow};

#[cfg(test)]
mod tests {
    use super::*;
    use annkit::ivf::{IvfPqIndex, IvfPqParams};
    use annkit::synthetic::{SyntheticDataset, SyntheticSpec};
    use annkit::workload::{MultiTenantSpec, QueryStream, StreamSpec, TenantId, TenantSpec, WorkloadSpec};
    use baselines::cpu::CpuFaissEngine;
    use baselines::engine::QueryOptions;
    use upanns_serve::service::ServiceConfig;
    use upanns_serve::FixedPolicy;

    fn fixture() -> (SyntheticDataset, IvfPqIndex) {
        let data = SyntheticSpec::sift_like(600)
            .with_clusters(8)
            .with_seed(11)
            .generate_with_meta();
        let index = IvfPqIndex::train(&data.vectors, &IvfPqParams::new(24, 8), 3);
        (data, index)
    }

    fn stream_spec(n: usize, qps: f64, seed: u64) -> StreamSpec {
        StreamSpec::new(n, qps).with_workload(WorkloadSpec::new(n).with_seed(seed))
    }

    fn engines(index: &IvfPqIndex, n: usize) -> Vec<CpuFaissEngine> {
        (0..n).map(|_| CpuFaissEngine::new(index)).collect()
    }

    fn run(
        stream: &QueryStream,
        index: &IvfPqIndex,
        workers: usize,
        config: RuntimeConfig,
    ) -> RuntimeReport {
        let policy = Box::new(FixedPolicy(config.service.batcher));
        run_pipeline(
            engines(index, workers),
            stream,
            |i| QueryOptions::new(10, 4).with_tenant(stream.tenant(i)),
            policy,
            config,
        )
    }

    #[test]
    fn wall_pipeline_conserves_every_query() {
        let (data, index) = fixture();
        let stream = stream_spec(80, 2000.0, 3).generate(&data);
        let report = run(&stream, &index, 2, RuntimeConfig::wall(ServiceConfig::default()));
        assert_eq!(report.mode, "wall");
        assert_eq!(report.lost, 0, "drain-then-join must not lose queries");
        assert_eq!(report.duplicated, 0);
        assert!(report.is_conserving());
        assert_eq!(report.completed + report.shed, 80);
        assert_eq!(report.results.len(), 80);
        // Nothing shed at this gentle offered rate, so every slot has an
        // answer.
        assert!(report.results.iter().all(|r| !r.is_empty()));
        assert!(report.makespan_s > 0.0);
    }

    #[test]
    fn logical_pipeline_is_shed_proof_and_conserving() {
        let (data, index) = fixture();
        // An offered rate that would shed in wall mode with a tiny queue.
        let stream = stream_spec(120, 50_000.0, 5).generate(&data);
        let mut config = RuntimeConfig::logical(ServiceConfig::default());
        config.service.queue_capacity = 4;
        let report = run(&stream, &index, 3, RuntimeConfig { ..config });
        assert_eq!(report.mode, "logical");
        assert_eq!(report.shed, 0, "the twin widens the queue to the stream");
        assert_eq!(report.completed, 120);
        assert!(report.is_conserving());
    }

    #[test]
    fn multi_tenant_wall_run_reports_every_profile() {
        let (data, index) = fixture();
        let spec = MultiTenantSpec::new()
            .with_tenant(
                TenantSpec::new(TenantId(1), stream_spec(30, 1500.0, 7))
                    .with_name("tight")
                    .with_weight(2),
            )
            .with_tenant(
                TenantSpec::new(TenantId(2), stream_spec(60, 3000.0, 9))
                    .with_name("bulk"),
            );
        let stream = spec.generate(&data);
        let report = run(&stream, &index, 2, RuntimeConfig::wall(ServiceConfig::default()));
        assert!(report.is_conserving());
        assert_eq!(report.tenants.len(), 2);
        assert_eq!(report.tenants[0].name, "tight");
        assert_eq!(report.tenants[1].name, "bulk");
        let offered: usize = report.tenants.iter().map(|t| t.completed + t.shed).sum();
        assert_eq!(offered, stream.len());
    }

    #[test]
    fn single_query_stream_drains_cleanly() {
        // The degenerate stream exercises the shutdown protocol with the
        // batcher's trailing-window close on the critical path.
        let (data, index) = fixture();
        let stream = stream_spec(1, 100.0, 17).generate(&data);
        let report = run(&stream, &index, 4, RuntimeConfig::wall(ServiceConfig::default()));
        assert_eq!(report.offered, 1);
        assert_eq!(report.completed, 1);
        assert!(report.is_conserving());
    }

    #[test]
    fn repeats_hit_the_cache_in_wall_mode() {
        let (data, index) = fixture();
        let stream = stream_spec(100, 4000.0, 13)
            .with_repeat_fraction(0.5)
            .generate(&data);
        let report = run(&stream, &index, 1, RuntimeConfig::wall(ServiceConfig::default()));
        assert!(report.is_conserving());
        assert!(
            report.cache_hits > 0,
            "a 50% repeat stream must produce cache hits; got {} hits / {} misses",
            report.cache_hits,
            report.cache_misses
        );
    }
}
