//! The Faiss-GPU-like baseline: functional IVFPQ with an NVIDIA A100 timing
//! model.
//!
//! The A100's 1.9 TB/s of HBM makes the distance-calculation stage very fast,
//! but the paper finds GPUs "stall during the low-parallelism top-k stage
//! (64 % of runtime)", growing to 76–89 % as `k` increases (Figure 19), due
//! to k-selection kernels with limited parallelism plus CUDA stream
//! synchronization. The model reproduces exactly that: distance calculation
//! is bandwidth-bound at HBM speed, top-k is throughput-limited per query and
//! carries a per-batch synchronization overhead that grows with `k`.
//!
//! The 80 GB device capacity is also modeled: [`GpuFaissEngine::check_memory`]
//! reports the out-of-memory condition that produces the blue "X" marks for
//! DEEP1B in Figure 12 (Faiss needs the raw float vectors resident for that
//! configuration, and 10⁹ × 96 × 4 B = 384 GB does not fit).

use crate::engine::{execute_by_entry, execute_grouped, AnnEngine, SearchRequest, SearchResponse};
use crate::exec::run_ivfpq;
use crate::hardware::HardwareSpec;
use annkit::ivf::IvfPqIndex;
use annkit::mutation::{IndexSnapshot, SnapshotTimeline};
use annkit::vector::Dataset;
use pim_sim::energy::EnergyModel;
use pim_sim::stats::StageBreakdown;

/// Performance characteristics of the GPU platform.
#[derive(Debug, Clone)]
pub struct GpuSpec {
    /// HBM bandwidth in bytes/s.
    pub hbm_bandwidth: f64,
    /// Peak f32 throughput in FLOPs/s.
    pub peak_flops: f64,
    /// Device memory in bytes.
    pub memory_bytes: u64,
    /// Fraction of peak HBM bandwidth achieved by the ADC scan kernel.
    pub scan_efficiency: f64,
    /// Fraction of peak FLOPs achieved by the dense kernels.
    pub compute_efficiency: f64,
    /// Effective candidate throughput (candidates/s) of the k-selection
    /// kernel for a single query — deliberately low because the per-query
    /// selection exposes little parallelism.
    pub topk_candidates_per_second: f64,
    /// Number of queries whose k-selection can proceed concurrently.
    pub topk_concurrent_queries: f64,
    /// Additional k-selection cost factor per unit of k (larger k ⇒ larger
    /// selection structures ⇒ more synchronization).
    pub topk_k_penalty: f64,
    /// CUDA stream synchronization / kernel launch overhead per batch stage.
    pub sync_overhead_s: f64,
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self {
            hbm_bandwidth: 1_935.0e9,
            peak_flops: 19.5e12,
            memory_bytes: 80 * 1024 * 1024 * 1024,
            scan_efficiency: 0.45,
            compute_efficiency: 0.35,
            topk_candidates_per_second: 1.32e9,
            topk_concurrent_queries: 4.0,
            topk_k_penalty: 0.004,
            sync_overhead_s: 120e-6,
        }
    }
}

/// Why a configuration cannot run on the GPU.
#[derive(Debug, Clone, PartialEq)]
pub enum GpuMemoryCheck {
    /// The working set fits in device memory.
    Fits {
        /// Bytes required.
        required: u64,
    },
    /// The working set exceeds device memory — the run is marked OOM, as in
    /// Figure 12's DEEP1B columns.
    OutOfMemory {
        /// Bytes required.
        required: u64,
        /// Device capacity.
        capacity: u64,
    },
}

/// The Faiss-GPU-like engine: exact IVFPQ results, A100 timing.
///
/// Like the CPU baseline, holds a [`SnapshotTimeline`] so live-mutation
/// timelines can be installed via [`AnnEngine::install_timeline`].
pub struct GpuFaissEngine {
    timeline: SnapshotTimeline,
    spec: GpuSpec,
    /// Work-scale factor projecting reduced-scale runs to the modeled dataset
    /// size (see [`CpuFaissEngine::with_work_scale`](crate::cpu::CpuFaissEngine::with_work_scale)).
    work_scale: f64,
}

impl GpuFaissEngine {
    /// Creates an engine over a trained index with the default A100 spec.
    pub fn new(index: &IvfPqIndex) -> Self {
        Self {
            timeline: SnapshotTimeline::frozen(index),
            spec: GpuSpec::default(),
            work_scale: 1.0,
        }
    }

    /// Overrides the GPU spec.
    pub fn with_spec(mut self, spec: GpuSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the work-scale factor used to project reduced-scale runs to the
    /// modeled dataset size (1.0 = no projection).
    pub fn with_work_scale(mut self, scale: f64) -> Self {
        assert!(scale >= 1.0 && scale.is_finite(), "work scale must be >= 1");
        self.work_scale = scale;
        self
    }

    /// The spec in use.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Device memory needed to host an index of `ntotal` vectors of `dim`
    /// dimensions compressed to `m` bytes. `store_raw_vectors` corresponds to
    /// Faiss GPU configurations that keep the float vectors resident (e.g.
    /// for re-ranking), which is what pushes DEEP1B past 80 GB in the paper.
    pub fn memory_required_bytes(
        ntotal: u64,
        dim: usize,
        m: usize,
        store_raw_vectors: bool,
    ) -> u64 {
        // Codes + ids + inverted-list overhead (~30 %).
        let compressed = ntotal * (m as u64 + 8);
        let overhead = compressed * 3 / 10;
        let raw = if store_raw_vectors {
            ntotal * dim as u64 * 4
        } else {
            0
        };
        compressed + overhead + raw
    }

    /// The snapshot this engine searches for requests at time 0 (the base
    /// index view when no timeline was installed).
    pub fn snapshot(&self) -> &IndexSnapshot {
        &self.timeline.entries()[0].1
    }

    /// Checks whether a (possibly billion-scale, extrapolated) configuration
    /// fits in device memory.
    pub fn check_memory(
        &self,
        ntotal: u64,
        store_raw_vectors: bool,
    ) -> GpuMemoryCheck {
        let index = self.snapshot();
        let required = Self::memory_required_bytes(
            ntotal,
            index.dim(),
            index.m(),
            store_raw_vectors,
        );
        if required <= self.spec.memory_bytes {
            GpuMemoryCheck::Fits { required }
        } else {
            GpuMemoryCheck::OutOfMemory {
                required,
                capacity: self.spec.memory_bytes,
            }
        }
    }

    /// Stage timing for a given functional run (exposed for the breakdown
    /// figures).
    pub fn stage_seconds(
        &self,
        stats: &crate::workload_stats::WorkloadStats,
        per_query_candidates: &[u64],
    ) -> StageBreakdown {
        let spec = &self.spec;
        let index = self.snapshot();
        let dim = index.dim() as f64;
        let dsub = (index.dim() / index.m()) as f64;
        let mut b = StageBreakdown::new();

        let effective_flops = spec.peak_flops * spec.compute_efficiency;

        // Stage (a): cluster filtering is a dense GEMM — trivially fast.
        let filter_flops = stats.centroid_comparisons as f64 * dim * 2.0;
        b.add(
            "cluster_filtering",
            filter_flops / effective_flops + spec.sync_overhead_s,
        );

        // Stage (b): LUT construction.
        let lut_flops = stats.lut_entries as f64 * dsub * 3.0;
        b.add(
            "lut_construction",
            lut_flops / effective_flops + spec.sync_overhead_s,
        );

        // Stage (c): ADC scan at HBM bandwidth. Per-candidate quantities are
        // projected by the work-scale factor.
        let scan_bytes = stats.code_bytes_read as f64 * self.work_scale;
        b.add(
            "distance_calc",
            scan_bytes / (spec.hbm_bandwidth * spec.scan_efficiency) + spec.sync_overhead_s,
        );

        // Stage (d): k-selection — the GPU bottleneck. Per-query selection
        // time is candidates / throughput, scaled up with k, with limited
        // cross-query concurrency.
        let k_factor = 1.0 + spec.topk_k_penalty * stats.k as f64;
        let per_query_total: f64 = per_query_candidates
            .iter()
            .map(|&c| c as f64 * self.work_scale / spec.topk_candidates_per_second * k_factor)
            .sum();
        let topk_time = per_query_total / spec.topk_concurrent_queries + spec.sync_overhead_s;
        b.add("topk", topk_time);

        b
    }

    /// One uniform sub-batch: functional IVFPQ search plus the A100 timing.
    fn run_uniform(
        &mut self,
        snapshot: &IndexSnapshot,
        queries: &Dataset,
        nprobe: usize,
        k: usize,
    ) -> SearchResponse {
        let run = run_ivfpq(snapshot, queries, nprobe, k);
        let breakdown = self.stage_seconds(&run.stats, &run.per_query_candidates);
        SearchResponse {
            request_id: 0,
            results: run.results,
            seconds: breakdown.total(),
            breakdown,
            stats: run.stats,
        }
    }
}

impl AnnEngine for GpuFaissEngine {
    fn name(&self) -> &str {
        "Faiss-GPU"
    }

    fn execute(&mut self, request: &SearchRequest) -> SearchResponse {
        let timeline = self.timeline.clone();
        execute_by_entry(&timeline, request, |entry, sub| {
            let snapshot = &timeline.entries()[entry].1;
            execute_grouped(sub, |queries, nprobe, k| {
                self.run_uniform(snapshot, queries, nprobe, k)
            })
        })
    }

    fn energy_model(&self) -> EnergyModel {
        HardwareSpec::gpu().energy_model()
    }

    fn install_timeline(&mut self, timeline: SnapshotTimeline) -> bool {
        self.timeline = timeline;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuFaissEngine;
    use annkit::ivf::IvfPqParams;
    use annkit::synthetic::SyntheticSpec;

    /// Compile-time Send audit for the threaded runtime's worker threads
    /// (see `cpu_engine_is_send` for the rationale).
    #[test]
    fn gpu_engine_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<GpuFaissEngine>();
    }

    fn fixture() -> (IvfPqIndex, Dataset) {
        let data = SyntheticSpec::sift_like(2500)
            .with_clusters(16)
            .with_seed(21)
            .generate();
        let index = IvfPqIndex::train(&data, &IvfPqParams::new(16, 16).with_train_size(900), 9);
        (index, data)
    }

    #[test]
    fn topk_dominates_gpu_time() {
        let (index, data) = fixture();
        // Billion-scale projection so the Figure 19 stage shape is visible.
        let mut gpu = GpuFaissEngine::new(&index).with_work_scale(1e4);
        let queries = data.gather(&(0..100).collect::<Vec<_>>());
        let out = gpu.search_batch(&queries, 8, 10);
        // Figure 19: the top-k stage consumes well over half of GPU time.
        assert!(
            out.breakdown.fraction("topk") > 0.6,
            "topk fraction {}",
            out.breakdown.fraction("topk")
        );
        assert!(out.qps() > 0.0);
        assert_eq!(gpu.name(), "Faiss-GPU");
    }

    #[test]
    fn topk_fraction_grows_with_k() {
        let (index, data) = fixture();
        let mut gpu = GpuFaissEngine::new(&index);
        let queries = data.gather(&(0..50).collect::<Vec<_>>());
        let small_k = gpu.search_batch(&queries, 8, 10);
        let large_k = gpu.search_batch(&queries, 8, 100);
        assert!(
            large_k.breakdown.fraction("topk") > small_k.breakdown.fraction("topk"),
            "expected top-k fraction to grow with k"
        );
        assert!(large_k.qps() < small_k.qps());
    }

    #[test]
    fn gpu_is_faster_than_cpu_on_the_same_workload() {
        let (index, data) = fixture();
        let queries = data.gather(&(0..50).collect::<Vec<_>>());
        let mut gpu = GpuFaissEngine::new(&index).with_work_scale(1e4);
        let mut cpu = CpuFaissEngine::new(&index).with_work_scale(1e4);
        let g = gpu.search_batch(&queries, 8, 10);
        let c = cpu.search_batch(&queries, 8, 10);
        assert!(g.qps() > c.qps(), "gpu {} vs cpu {}", g.qps(), c.qps());
        // And both return identical answers.
        for (a, b) in g.results.iter().zip(&c.results) {
            assert_eq!(
                a.iter().map(|n| n.id).collect::<Vec<_>>(),
                b.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn memory_check_reproduces_deep1b_oom() {
        let (index, _) = fixture();
        let gpu = GpuFaissEngine::new(&index);
        // SIFT1B without raw vectors fits comfortably.
        assert!(matches!(
            gpu.check_memory(1_000_000_000, false),
            GpuMemoryCheck::Fits { .. }
        ));
        // DEEP1B with resident raw float vectors (as in the paper's failing
        // configuration) needs hundreds of GB and goes OOM.
        let check = gpu.check_memory(1_000_000_000, true);
        match check {
            GpuMemoryCheck::OutOfMemory { required, capacity } => {
                assert!(required > capacity);
                assert!(required > 300 * 1024 * 1024 * 1024);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn energy_model_is_a100() {
        let (index, _) = fixture();
        let gpu = GpuFaissEngine::new(&index);
        assert_eq!(gpu.energy_model().peak_watts, 300.0);
        assert_eq!(gpu.spec().memory_bytes, 80 * 1024 * 1024 * 1024);
    }
}
