//! Fault-tolerant replicated multihost serving (ROADMAP item 4).
//!
//! [`MultiHostUpAnns`](crate::multihost::MultiHostUpAnns) assumes every host
//! is healthy forever. This module drops that assumption:
//!
//! * [`ReplicaMap`] places every shard on `r ≥ 1` hosts (ring placement over
//!   the existing [`shard_ranges`](crate::multihost::shard_ranges) shards),
//!   and rebalances with an explicit [`MigrationPlan`] when the host count
//!   changes;
//! * [`FaultSchedule`] injects host down/up events at *simulated* times — no
//!   wall clock, so the `upanns-lint` determinism rules and the runtime's
//!   byte-diffed twin still hold. The schedule is evaluated at
//!   [`SearchRequest::at`](baselines::engine::SearchRequest::at), which the
//!   serving layers set to the batch close time (identical between the
//!   discrete-event replay and the threaded twin);
//! * [`ReplicatedMultiHost`] is the engine: per batch it picks one live
//!   replica per shard, re-dispatches a shard **exactly once** to a surviving
//!   replica when its host dies with the work in flight (stalling until the
//!   outage ends when nobody survives), hedges a shard to a second replica
//!   when the primary's modeled completion exceeds the hedging budget, and
//!   merges per-query top-k lists (dedup by id) across shards.
//!
//! **Answer purity.** Each shard is served by one underlying engine; which
//! *host* answers only moves simulated time. The merged answers are therefore
//! a pure function of (queries, per-query options, the set of shards with at
//! least one live replica at `request.at`) — with all hosts healthy they are
//! bitwise-identical to the unreplicated merge, and under faults they equal
//! the unreplicated merge restricted to surviving coverage, with the dropped
//! query×shard pairs counted in `stats.degraded` (never a silent partial
//! answer). A mid-flight death only moves completion times (re-dispatch or
//! stall), never the answer.

use std::collections::HashSet;
use std::fmt;

use annkit::topk::{Neighbor, TopK};
use baselines::engine::{AnnEngine, SearchRequest, SearchResponse};
use baselines::workload_stats::WorkloadStats;
use pim_sim::energy::EnergyModel;
use pim_sim::stats::StageBreakdown;

use crate::engine::UpAnnsEngine;
use crate::multihost::InterconnectModel;

/// Modeled bytes a host must pull per migrated vector: a 16-byte PQ code
/// plus the 8-byte global id.
const MIGRATION_BYTES_PER_VECTOR: usize = 24;

/// Why a [`ReplicaMap`] could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaMapError {
    /// Zero hosts can serve nothing.
    ZeroHosts,
    /// A replica factor of zero would silently drop every shard.
    ZeroReplicas,
    /// More replicas than hosts would wrap the ring onto the same host; the
    /// map refuses rather than placing two "replicas" on one failure domain.
    ReplicasExceedHosts {
        /// Requested replica factor.
        replicas: usize,
        /// Available hosts.
        hosts: usize,
    },
}

impl fmt::Display for ReplicaMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroHosts => write!(f, "replica map needs at least one host"),
            Self::ZeroReplicas => write!(f, "replica map needs a replica factor of at least one"),
            Self::ReplicasExceedHosts { replicas, hosts } => write!(
                f,
                "replica factor {replicas} exceeds {hosts} host(s); \
                 refusing to co-locate replicas on one failure domain"
            ),
        }
    }
}

impl std::error::Error for ReplicaMapError {}

/// One shard's worth of data moving to a new host during a rebalance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMove {
    /// The shard being copied.
    pub shard: usize,
    /// A host that already held the shard (the copy source).
    pub from: usize,
    /// The host gaining the shard.
    pub to: usize,
}

/// The set of shard copies a rebalance requires.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MigrationPlan {
    /// Every (shard, from, to) copy, in shard order.
    pub moves: Vec<ShardMove>,
}

/// Ring placement of `shards` shards onto `hosts` hosts with replica factor
/// `replicas`: shard `s` lives on hosts `(s + j) mod hosts` for
/// `j in 0..replicas`. Every shard is on exactly `replicas` distinct hosts,
/// and host loads differ by at most one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaMap {
    shards: usize,
    hosts: usize,
    replicas: usize,
}

impl ReplicaMap {
    /// Builds the map, rejecting degenerate shapes (see [`ReplicaMapError`]).
    pub fn new(shards: usize, hosts: usize, replicas: usize) -> Result<Self, ReplicaMapError> {
        if hosts == 0 {
            return Err(ReplicaMapError::ZeroHosts);
        }
        if replicas == 0 {
            return Err(ReplicaMapError::ZeroReplicas);
        }
        if replicas > hosts {
            return Err(ReplicaMapError::ReplicasExceedHosts { replicas, hosts });
        }
        Ok(Self {
            shards,
            hosts,
            replicas,
        })
    }

    /// Number of shards placed.
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Number of hosts placed onto.
    pub fn num_hosts(&self) -> usize {
        self.hosts
    }

    /// The replica factor.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The hosts holding `shard`, in ring order (the first entry is the
    /// shard's primary).
    pub fn hosts_of(&self, shard: usize) -> Vec<usize> {
        assert!(shard < self.shards, "shard {shard} out of range");
        (0..self.replicas).map(|j| (shard + j) % self.hosts).collect()
    }

    /// The shards held by `host`, in shard order.
    pub fn shards_of(&self, host: usize) -> Vec<usize> {
        (0..self.shards)
            .filter(|&s| self.hosts_of(s).contains(&host))
            .collect()
    }

    /// Recomputes the ring for a new host count and returns the new map plus
    /// the shard copies needed to realize it. Every shard ends on exactly
    /// `replicas` hosts of the *new* host set (migration conservation); the
    /// plan lists one move per placement that did not exist before.
    pub fn rebalance(&self, new_hosts: usize) -> Result<(Self, MigrationPlan), ReplicaMapError> {
        let next = Self::new(self.shards, new_hosts, self.replicas)?;
        let mut moves = Vec::new();
        for s in 0..self.shards {
            let old: Vec<usize> = self.hosts_of(s);
            let from = old[0];
            for to in next.hosts_of(s) {
                if !old.contains(&to) {
                    moves.push(ShardMove { shard: s, from, to });
                }
            }
        }
        Ok((next, MigrationPlan { moves }))
    }
}

/// One host outage: `host` is down for simulated times `down_at <= t < up_at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// The host that fails.
    pub host: usize,
    /// Simulated second the host dies.
    pub down_at: f64,
    /// Simulated second the host comes back (exclusive of the outage).
    pub up_at: f64,
}

/// A deterministic schedule of host outages on the replay clock.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// A schedule with no outages (every host always up).
    pub fn none() -> Self {
        Self::default()
    }

    /// A schedule from explicit events.
    ///
    /// # Panics
    /// Panics if any event has `down_at >= up_at` or non-finite times.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        for e in &events {
            assert!(
                e.down_at.is_finite() && e.up_at.is_finite() && e.down_at < e.up_at,
                "fault event for host {} needs finite down_at < up_at",
                e.host
            );
        }
        Self { events }
    }

    /// Parses the serve binary's `--fault` grammar: one or more
    /// comma-separated `HOST@DOWN..UP` outages, e.g. `1@20..45` or
    /// `0@5..9,2@30..60`. Times are simulated seconds.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                return Err(format!("empty outage in fault spec {spec:?}"));
            }
            let (host_s, window) = part
                .split_once('@')
                .ok_or_else(|| format!("outage {part:?} is not HOST@DOWN..UP"))?;
            let host: usize = host_s
                .parse()
                .map_err(|_| format!("bad host index {host_s:?} in outage {part:?}"))?;
            let (down_s, up_s) = window
                .split_once("..")
                .ok_or_else(|| format!("outage {part:?} window is not DOWN..UP"))?;
            let down_at: f64 = down_s
                .parse()
                .map_err(|_| format!("bad down time {down_s:?} in outage {part:?}"))?;
            let up_at: f64 = up_s
                .parse()
                .map_err(|_| format!("bad up time {up_s:?} in outage {part:?}"))?;
            if !down_at.is_finite() || !up_at.is_finite() || down_at < 0.0 {
                return Err(format!("outage {part:?} times must be finite and non-negative"));
            }
            if down_at >= up_at {
                return Err(format!("outage {part:?} must have DOWN < UP"));
            }
            events.push(FaultEvent { host, down_at, up_at });
        }
        Ok(Self { events })
    }

    /// The scheduled outages.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the schedule contains no outages.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether `host` is up at simulated time `t`.
    pub fn is_up(&self, host: usize, t: f64) -> bool {
        !self
            .events
            .iter()
            .any(|e| e.host == host && e.down_at <= t && t < e.up_at)
    }

    /// The earliest time in `(after, until]` at which `host` goes down, if
    /// any — the instant in-flight work on that host is lost.
    pub fn down_during(&self, host: usize, after: f64, until: f64) -> Option<f64> {
        self.events
            .iter()
            .filter(|e| e.host == host && e.down_at > after && e.down_at <= until)
            .map(|e| e.down_at)
            .fold(None, |best: Option<f64>, d| {
                Some(best.map_or(d, |b| b.min(d)))
            })
    }

    /// The earliest time at or after `t` when `host` is up (`t` itself when
    /// the host is already up). Chained/overlapping outages are walked until
    /// a gap is found.
    pub fn up_after(&self, host: usize, t: f64) -> f64 {
        let mut t = t;
        loop {
            match self
                .events
                .iter()
                .find(|e| e.host == host && e.down_at <= t && t < e.up_at)
            {
                Some(e) => t = e.up_at,
                None => return t,
            }
        }
    }
}

/// A replicated multi-host UpANNS deployment with deterministic fault
/// injection, hedged retries, and host-level elasticity.
///
/// One underlying [`UpAnnsEngine`] serves each *shard*; hosts are modeled
/// timing entities that the [`ReplicaMap`] assigns shards to. See the module
/// docs for the answer-purity contract.
pub struct ReplicatedMultiHost {
    shards: Vec<UpAnnsEngine>,
    shard_bytes: Vec<usize>,
    map: ReplicaMap,
    interconnect: InterconnectModel,
    faults: FaultSchedule,
    hedge_budget_s: Option<f64>,
    name: String,
    /// Per-host simulated time before which the host is still pulling shard
    /// data and cannot serve (only ever non-zero for hosts added by
    /// [`scale_to`](AnnEngine::scale_to)).
    ready_at: Vec<f64>,
    /// Shard engines that participated in the last executed batch.
    last_served: Vec<usize>,
    /// Total modeled migration seconds charged by `scale_to` so far.
    migration_s_total: f64,
}

impl ReplicatedMultiHost {
    /// Assembles a deployment from per-shard engines (each built over that
    /// shard's index with globally unique vector ids), `hosts` hosts and
    /// replica factor `replicas`.
    pub fn new(
        shards: Vec<UpAnnsEngine>,
        hosts: usize,
        replicas: usize,
        interconnect: InterconnectModel,
    ) -> Result<Self, ReplicaMapError> {
        let map = ReplicaMap::new(shards.len(), hosts, replicas)?;
        let shard_bytes = shards
            .iter()
            .map(|e| {
                let vectors: usize = e.placement().dpu_vectors.iter().sum();
                vectors * MIGRATION_BYTES_PER_VECTOR
            })
            .collect();
        let name = Self::display_name(shards.len(), hosts, replicas);
        Ok(Self {
            shards,
            shard_bytes,
            map,
            interconnect,
            faults: FaultSchedule::none(),
            hedge_budget_s: None,
            name,
            ready_at: vec![0.0; hosts],
            last_served: Vec::new(),
            migration_s_total: 0.0,
        })
    }

    fn display_name(shards: usize, hosts: usize, replicas: usize) -> String {
        format!("UpANNS x{hosts} hosts r{replicas} ({shards} shards)")
    }

    /// Installs the outage schedule (replaces any previous one).
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Enables hedged retries: a shard whose modeled completion exceeds
    /// `seconds` past the request's dispatch time is cloned to the
    /// least-loaded other live replica, and the shard completes at the
    /// earlier of the two finishes.
    pub fn with_hedge_budget(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0, "hedge budget must be positive");
        self.hedge_budget_s = Some(seconds);
        self
    }

    /// The shard→host placement currently in force.
    pub fn replica_map(&self) -> &ReplicaMap {
        &self.map
    }

    /// The outage schedule.
    pub fn faults(&self) -> &FaultSchedule {
        &self.faults
    }

    /// Total modeled migration seconds charged by `scale_to` so far.
    pub fn migration_seconds(&self) -> f64 {
        self.migration_s_total
    }

    /// The worst per-shard-engine DPU balance ratio **of the last executed
    /// batch**. Only engines that actually served the last batch contribute,
    /// and non-finite per-engine values are discarded, so the value stays
    /// well-defined (default 1.0) when the host set — and with it the set of
    /// participating shards — changes between batches.
    pub fn last_balance_ratio(&self) -> f64 {
        self.last_served
            .iter()
            .map(|&s| self.shards[s].last_balance_ratio())
            .filter(|r| r.is_finite())
            .fold(1.0f64, f64::max)
    }

    /// Whether `host` can serve at simulated time `t`: provisioned, finished
    /// migrating, and not inside a scheduled outage.
    fn host_live(&self, host: usize, t: f64) -> bool {
        host < self.map.num_hosts() && self.ready_at[host] <= t && self.faults.is_up(host, t)
    }

    /// The live replicas of `shard` at time `t`, in ring order.
    fn live_replicas(&self, shard: usize, t: f64) -> Vec<usize> {
        self.map
            .hosts_of(shard)
            .into_iter()
            .filter(|&h| self.host_live(h, t))
            .collect()
    }
}

impl AnnEngine for ReplicatedMultiHost {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(&mut self, request: &SearchRequest) -> SearchResponse {
        if request.is_empty() {
            return SearchResponse::empty(request.id);
        }
        let t0 = request.at;
        let queries = request.queries();
        let num_shards = self.shards.len();
        let live_count = (0..self.map.num_hosts())
            .filter(|&h| self.host_live(h, t0))
            .count();
        let peers = live_count.saturating_sub(1);

        // Replica selection: one live host per shard, keyed on the request id
        // so the choice is deterministic and spreads across replicas. A shard
        // with no live replica is *degraded*: it is dropped from the merge
        // and counted, never silently answered.
        let mut primaries: Vec<Option<usize>> = Vec::with_capacity(num_shards);
        let mut degraded_shards = 0u64;
        for s in 0..num_shards {
            let live = self.live_replicas(s, t0);
            if live.is_empty() {
                degraded_shards += 1;
                primaries.push(None);
            } else {
                primaries.push(Some(live[request.id as usize % live.len()]));
            }
        }

        let query_bytes = queries.len() * queries.dim() * 4;
        let broadcast_s = self.interconnect.transfer_seconds(query_bytes, peers);
        let start = t0 + broadcast_s;

        // Functional execution: each covered shard runs once, regardless of
        // which host (or hosts, under hedging) the timing model charges.
        let mut served: Vec<(usize, SearchResponse)> = Vec::new();
        self.last_served.clear();
        let mut hedged = 0u64;
        let mut redispatched = 0u64;
        let mut host_busy = vec![0.0f64; self.map.num_hosts()];
        let mut search_s = 0.0f64;
        for (s, slot) in primaries.iter().enumerate() {
            let Some(primary) = *slot else { continue };
            let outcome = self.shards[s].execute(request);
            let shard_sec = outcome.seconds;
            let abs_start = start + host_busy[primary];
            let abs_finish = abs_start + shard_sec;
            let completion;
            if let Some(died_at) = self.faults.down_during(primary, t0, abs_finish) {
                // The host died with this shard in flight: move the work to a
                // surviving replica exactly once (no second hop — a double
                // failure inside one batch window keeps the late answer).
                let fallback = self
                    .map
                    .hosts_of(s)
                    .into_iter()
                    .filter(|&h| h != primary && self.host_live(h, died_at))
                    .fold(None, |best: Option<usize>, h| {
                        Some(best.map_or(h, |b| {
                            if host_busy[h] < host_busy[b] {
                                h
                            } else {
                                b
                            }
                        }))
                    });
                match fallback {
                    Some(alt) => {
                        redispatched += 1;
                        let retry_start = died_at.max(start + host_busy[alt]);
                        completion = retry_start + shard_sec;
                        host_busy[alt] = completion - start;
                    }
                    None => {
                        // Every replica is down at the death instant: the
                        // shard stalls until the primary's outage ends and
                        // re-runs there. Answers never lose coverage that
                        // existed at dispatch time — only simulated time
                        // moves — so the merge stays a pure function of the
                        // live set at `request.at`.
                        redispatched += 1;
                        let resume = self.faults.up_after(primary, died_at).max(abs_start);
                        completion = resume + shard_sec;
                        host_busy[primary] = completion - start;
                    }
                }
            } else {
                let mut finish = abs_finish;
                host_busy[primary] += shard_sec;
                if let Some(budget) = self.hedge_budget_s {
                    if finish - t0 > budget {
                        // Straggler: clone the shard to the least-loaded
                        // other live replica; first finish wins.
                        let alt = self
                            .map
                            .hosts_of(s)
                            .into_iter()
                            .filter(|&h| h != primary && self.host_live(h, t0))
                            .fold(None, |best: Option<usize>, h| {
                                Some(best.map_or(h, |b| {
                                    if host_busy[h] < host_busy[b] {
                                        h
                                    } else {
                                        b
                                    }
                                }))
                            });
                        if let Some(alt) = alt {
                            hedged += 1;
                            let hedge_finish = start + host_busy[alt] + shard_sec;
                            host_busy[alt] += shard_sec;
                            finish = finish.min(hedge_finish);
                        }
                    }
                }
                completion = finish;
            }
            search_s = search_s.max(completion - start);
            self.last_served.push(s);
            served.push((s, outcome));
        }

        // Result aggregation over the covered shards, as in the unreplicated
        // coordinator: gather leg plus a scalar merge.
        let returned_k: usize = request.options().iter().map(|o| o.k).sum();
        let result_bytes = returned_k * 12;
        let gather_s = self.interconnect.transfer_seconds(result_bytes, peers);
        let merge_ops = (served.len() * returned_k) as f64;
        let merge_s = merge_ops * 8.0 / 2.1e9;

        // Per-query merge in shard order with an id dedup guard: shard id
        // ranges are disjoint by construction, and a hedged clone's answers
        // are identical to its primary's, so each id can win at most once.
        let mut results: Vec<Vec<Neighbor>> = Vec::with_capacity(queries.len());
        for (q, opt) in request.options().iter().enumerate() {
            let mut heap = TopK::new(opt.k);
            let mut seen: HashSet<u64> = HashSet::new();
            for (_, outcome) in &served {
                for n in &outcome.results[q] {
                    if seen.insert(n.id) {
                        heap.push(n.id, n.distance);
                    }
                }
            }
            results.push(heap.into_sorted());
        }

        let mut breakdown = StageBreakdown::new();
        breakdown.add("query_broadcast", broadcast_s);
        if let Some(critical) = served.iter().map(|(_, o)| o).max_by(|a, b| {
            a.seconds
                .partial_cmp(&b.seconds)
                .unwrap_or(std::cmp::Ordering::Equal)
        }) {
            let critical_total = critical.breakdown.total().max(f64::MIN_POSITIVE);
            for (label, secs) in critical.breakdown.entries() {
                breakdown.add(&label, secs / critical_total * search_s);
            }
        }
        breakdown.add("result_gather", gather_s);
        breakdown.add("coordinator_merge", merge_s);

        let mut stats = WorkloadStats::default();
        for (_, o) in &served {
            stats.merge(&o.stats);
        }
        stats.queries = queries.len();
        stats.k = request.max_k();
        stats.nprobe = request.options().iter().map(|o| o.nprobe).max().unwrap_or(0);
        stats.degraded = degraded_shards * queries.len() as u64;
        stats.hedged = hedged;
        stats.redispatched = redispatched;

        SearchResponse {
            request_id: request.id,
            results,
            seconds: broadcast_s + search_s + gather_s + merge_s,
            breakdown,
            stats,
        }
    }

    fn energy_model(&self) -> EnergyModel {
        let mut watts = 0.0;
        let mut price = 0.0;
        for shard in &self.shards {
            let m = shard.energy_model();
            watts += m.peak_watts;
            price += m.price_usd;
        }
        EnergyModel::new(self.name.clone(), watts, price)
    }

    /// Rebalances the replica map to `hosts` hosts at simulated time `now`,
    /// charging shard copies through the interconnect. Pulls to distinct
    /// destination hosts overlap, so the returned migration time is the
    /// slowest destination's pull; hosts that are *new* to the deployment
    /// cannot serve until their pull completes (existing hosts keep serving
    /// the shards they already hold). The target is clamped to the replica
    /// factor so elasticity can never silently under-replicate.
    fn scale_to(&mut self, hosts: usize, now: f64) -> Option<f64> {
        let target = hosts.max(self.map.replicas()).max(1);
        let old_hosts = self.map.num_hosts();
        if target == old_hosts {
            return Some(0.0);
        }
        let (next, plan) = match self.map.rebalance(target) {
            Ok(v) => v,
            Err(_) => return None,
        };
        let mut dest_bytes = vec![0usize; target];
        for mv in &plan.moves {
            if mv.to < target {
                dest_bytes[mv.to] += self.shard_bytes[mv.shard];
            }
        }
        let mut migration_s = 0.0f64;
        let mut new_ready = vec![0.0f64; target];
        for (h, &bytes) in dest_bytes.iter().enumerate() {
            let cost = self.interconnect.transfer_seconds(bytes, 1);
            migration_s = migration_s.max(cost);
            if h < old_hosts {
                new_ready[h] = self.ready_at[h];
            } else {
                new_ready[h] = now + cost;
            }
        }
        self.map = next;
        self.ready_at = new_ready;
        self.migration_s_total += migration_s;
        self.name = Self::display_name(self.shards.len(), target, self.map.replicas());
        Some(migration_s)
    }

    fn live_hosts(&self) -> Option<usize> {
        Some(self.map.num_hosts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_placement_covers_every_shard_with_distinct_hosts() {
        let map = ReplicaMap::new(7, 4, 2).expect("valid");
        for s in 0..7 {
            let hosts = map.hosts_of(s);
            assert_eq!(hosts.len(), 2);
            assert_ne!(hosts[0], hosts[1], "replicas share a failure domain");
            assert!(hosts.iter().all(|&h| h < 4));
        }
        // Host loads differ by at most one shard.
        let loads: Vec<usize> = (0..4).map(|h| map.shards_of(h).len()).collect();
        let (min, max) = (loads.iter().min().unwrap(), loads.iter().max().unwrap());
        assert!(max - min <= 1, "uneven ring loads {loads:?}");
        // hosts_of/shards_of agree.
        for h in 0..4 {
            for s in map.shards_of(h) {
                assert!(map.hosts_of(s).contains(&h));
            }
        }
    }

    #[test]
    fn degenerate_maps_error_instead_of_wrapping() {
        assert_eq!(ReplicaMap::new(4, 0, 1), Err(ReplicaMapError::ZeroHosts));
        assert_eq!(ReplicaMap::new(4, 2, 0), Err(ReplicaMapError::ZeroReplicas));
        assert_eq!(
            ReplicaMap::new(4, 2, 3),
            Err(ReplicaMapError::ReplicasExceedHosts {
                replicas: 3,
                hosts: 2
            })
        );
        // The error messages render (std::error::Error is implemented).
        let err = ReplicaMap::new(4, 2, 3).unwrap_err();
        assert!(err.to_string().contains("replica factor 3"));
        // Zero shards is a valid (empty) map, e.g. n == 0 datasets.
        let empty = ReplicaMap::new(0, 3, 2).expect("empty map is fine");
        assert_eq!(empty.shards_of(0), Vec::<usize>::new());
    }

    #[test]
    fn rebalance_conserves_replica_count_and_plans_only_new_placements() {
        let map = ReplicaMap::new(6, 3, 2).expect("valid");
        let (grown, plan) = map.rebalance(5).expect("grow");
        for s in 0..6 {
            let hosts = grown.hosts_of(s);
            assert_eq!(hosts.len(), 2, "shard {s} not on exactly r live hosts");
            let unique: HashSet<usize> = hosts.iter().copied().collect();
            assert_eq!(unique.len(), 2);
        }
        for mv in &plan.moves {
            assert!(map.hosts_of(mv.shard).contains(&mv.from), "source held the shard");
            assert!(!map.hosts_of(mv.shard).contains(&mv.to), "move already placed");
            assert!(grown.hosts_of(mv.shard).contains(&mv.to), "move lands in new map");
        }
        // Shrinking below the replica factor errors instead of wrapping.
        assert!(map.rebalance(1).is_err());
        // A no-op rebalance plans no moves.
        let (same, noop) = map.rebalance(3).expect("same size");
        assert_eq!(same, map);
        assert!(noop.moves.is_empty());
    }

    #[test]
    fn fault_schedule_parses_the_cli_grammar() {
        let sched = FaultSchedule::parse("1@20..45").expect("valid");
        assert_eq!(sched.events().len(), 1);
        assert!(sched.is_up(1, 19.9));
        assert!(!sched.is_up(1, 20.0), "down_at is inclusive");
        assert!(!sched.is_up(1, 44.9));
        assert!(sched.is_up(1, 45.0), "up_at is exclusive");
        assert!(sched.is_up(0, 30.0), "other hosts unaffected");

        let multi = FaultSchedule::parse("0@5..9, 2@30..60").expect("two outages");
        assert_eq!(multi.events().len(), 2);

        for bad in [
            "", "1", "1@", "@5..9", "1@9..5", "1@5..5", "x@5..9", "1@a..9", "1@5..b",
            "1@-3..9", "1@nan..9", "1@5..9,,", "1@5-9",
        ] {
            assert!(FaultSchedule::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn down_during_finds_the_earliest_inflight_outage() {
        let sched = FaultSchedule::parse("1@10..20,1@30..40").expect("valid");
        assert_eq!(sched.down_during(1, 0.0, 5.0), None);
        assert_eq!(sched.down_during(1, 0.0, 15.0), Some(10.0));
        assert_eq!(sched.down_during(1, 0.0, 50.0), Some(10.0));
        assert_eq!(sched.down_during(1, 25.0, 50.0), Some(30.0));
        assert_eq!(sched.down_during(1, 10.0, 20.0), None, "strictly after `after`");
        assert_eq!(sched.down_during(0, 0.0, 100.0), None);
    }
}
