//! Opt1 (offline half): PIM-aware data placement — Algorithm 1 of the paper.
//!
//! Each cluster `i` has a size `sᵢ` (vectors) and a historical access
//! frequency `fᵢ`. Its expected workload is `wᵢ = sᵢ·fᵢ`. The placement
//! 1. keeps whole clusters on single DPUs (no partial-result transfers),
//! 2. replicates clusters whose workload exceeds the per-DPU average `W`
//!    onto `n_cpy = ⌈sᵢ·fᵢ / W⌉` DPUs, and
//! 3. packs replicas onto DPUs while keeping every DPU under a workload
//!    threshold that is relaxed by `rate` whenever no DPU fits.
//!
//! The naive alternative (used by PIM-naive and the Figure 11 ablation)
//! assigns clusters to DPUs round-robin with no replication.

/// Inputs of the placement algorithm.
#[derive(Debug, Clone)]
pub struct PlacementInput {
    /// Number of vectors per cluster (`sᵢ`).
    pub cluster_sizes: Vec<usize>,
    /// Historical access frequency per cluster (`fᵢ`, any non-negative scale).
    pub frequencies: Vec<f64>,
    /// Number of DPUs available.
    pub num_dpus: usize,
    /// Maximum number of vectors a single DPU may hold (`MAX_DPU_SIZE`),
    /// derived from MRAM capacity.
    pub max_dpu_vectors: usize,
    /// Threshold relaxation rate (`rate` in Algorithm 1, default 0.02).
    pub threshold_rate: f64,
}

impl PlacementInput {
    /// Creates an input with the default relaxation rate.
    pub fn new(
        cluster_sizes: Vec<usize>,
        frequencies: Vec<f64>,
        num_dpus: usize,
        max_dpu_vectors: usize,
    ) -> Self {
        assert_eq!(
            cluster_sizes.len(),
            frequencies.len(),
            "sizes and frequencies must align"
        );
        assert!(num_dpus > 0, "need at least one DPU");
        assert!(max_dpu_vectors > 0, "DPU capacity must be positive");
        Self {
            cluster_sizes,
            frequencies,
            num_dpus,
            max_dpu_vectors,
            threshold_rate: 0.02,
        }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.cluster_sizes.len()
    }

    /// Workload of cluster `i` (`wᵢ = sᵢ·fᵢ`).
    pub fn workload(&self, i: usize) -> f64 {
        self.cluster_sizes[i] as f64 * self.frequencies[i]
    }

    /// The balanced per-DPU workload target `W = Σwᵢ / n`.
    pub fn target_per_dpu(&self) -> f64 {
        let total: f64 = (0..self.num_clusters()).map(|i| self.workload(i)).sum();
        total / self.num_dpus as f64
    }
}

/// The result of placing all clusters: for each cluster, the list of DPUs
/// holding a replica, and the resulting per-DPU load estimates.
#[derive(Debug, Clone)]
pub struct Placement {
    /// `cluster_to_dpus[c]` = DPUs holding a replica of cluster `c`
    /// (at least one entry per cluster).
    pub cluster_to_dpus: Vec<Vec<usize>>,
    /// Estimated workload per DPU (`Σ wᵢ / n_cpyᵢ` over hosted replicas).
    pub dpu_workload: Vec<f64>,
    /// Number of vectors stored per DPU (each replica stores the whole
    /// cluster).
    pub dpu_vectors: Vec<usize>,
}

impl Placement {
    /// Number of replicas of cluster `c`.
    pub fn replicas(&self, c: usize) -> usize {
        self.cluster_to_dpus[c].len()
    }

    /// Total number of (cluster, DPU) replica pairs.
    pub fn total_replicas(&self) -> usize {
        self.cluster_to_dpus.iter().map(|d| d.len()).sum()
    }

    /// Ratio of the most-loaded DPU's estimated workload to the average over
    /// DPUs that host at least one replica — the static counterpart of
    /// Figure 11's max/avg metric.
    pub fn max_to_avg_workload(&self) -> f64 {
        let busy: Vec<f64> = self
            .dpu_workload
            .iter()
            .copied()
            .filter(|&w| w > 0.0)
            .collect();
        if busy.is_empty() {
            return 1.0;
        }
        let max = busy.iter().cloned().fold(0.0f64, f64::max);
        let avg = busy.iter().sum::<f64>() / busy.len() as f64;
        if avg <= 0.0 {
            1.0
        } else {
            max / avg
        }
    }

    /// Checks the structural invariants every placement must satisfy:
    /// every cluster has ≥ 1 replica, all DPU ids are in range, and no DPU
    /// exceeds `max_dpu_vectors`.
    pub fn validate(&self, input: &PlacementInput) -> Result<(), String> {
        if self.cluster_to_dpus.len() != input.num_clusters() {
            return Err("placement covers wrong number of clusters".into());
        }
        for (c, dpus) in self.cluster_to_dpus.iter().enumerate() {
            if dpus.is_empty() {
                return Err(format!("cluster {c} has no replica"));
            }
            for &d in dpus {
                if d >= input.num_dpus {
                    return Err(format!("cluster {c} placed on invalid DPU {d}"));
                }
            }
            let mut sorted = dpus.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != dpus.len() {
                return Err(format!("cluster {c} has duplicate replicas on one DPU"));
            }
        }
        for (d, &v) in self.dpu_vectors.iter().enumerate() {
            if v > input.max_dpu_vectors {
                return Err(format!(
                    "DPU {d} holds {v} vectors, above the cap {}",
                    input.max_dpu_vectors
                ));
            }
        }
        Ok(())
    }
}

/// Algorithm 1: PIM-aware data placement with hot-cluster replication.
///
/// Clusters are processed in descending workload order (hottest first, so the
/// big replicas land before the packing gets tight). For each cluster, the
/// number of replicas is `⌈wᵢ / W⌉` and each replica carries `wᵢ / n_cpy`
/// workload. Replicas are assigned by scanning DPUs round-robin, accepting a
/// DPU whenever it stays under `W × thld` workload and under the vector cap;
/// after a full unsuccessful scan, `thld` is relaxed by `rate`.
pub fn place_pim_aware(input: &PlacementInput) -> Placement {
    let n = input.num_dpus;
    let target = input.target_per_dpu().max(f64::MIN_POSITIVE);
    let mut dpu_workload = vec![0.0f64; n];
    let mut dpu_vectors = vec![0usize; n];
    let mut cluster_to_dpus = vec![Vec::new(); input.num_clusters()];

    // Hottest clusters first.
    let mut order: Vec<usize> = (0..input.num_clusters()).collect();
    order.sort_by(|&a, &b| {
        input
            .workload(b)
            .partial_cmp(&input.workload(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    // `d_id` persists across clusters so consecutive (spatially close) cluster
    // ids tend to land on the same or nearby DPUs (insight 3 of §4.1.1).
    let mut d_id = 0usize;
    for &c in &order {
        let w = input.workload(c);
        let size = input.cluster_sizes[c];
        let ncpy = ((w / target).ceil() as usize).clamp(1, n);
        let per_replica_w = w / ncpy as f64;

        let mut thld = 1.0f64;
        let mut placed = 0usize;
        let mut scanned_without_fit = 0usize;
        while placed < ncpy {
            let fits_workload = dpu_workload[d_id] + per_replica_w <= target * thld;
            let fits_capacity = dpu_vectors[d_id] + size <= input.max_dpu_vectors;
            let already_there = cluster_to_dpus[c].contains(&d_id);
            if fits_workload && fits_capacity && !already_there {
                cluster_to_dpus[c].push(d_id);
                dpu_workload[d_id] += per_replica_w;
                dpu_vectors[d_id] += size;
                placed += 1;
                scanned_without_fit = 0;
            } else {
                scanned_without_fit += 1;
            }
            d_id = (d_id + 1) % n;
            if scanned_without_fit == n {
                // No DPU fits under the current threshold: loosen the balance
                // constraint (Algorithm 1, lines 11–12). The capacity cap is
                // never loosened; if even that fails the dataset simply does
                // not fit, which `validate` will surface.
                thld += input.threshold_rate;
                scanned_without_fit = 0;
                if thld > 1e6 {
                    // Capacity-bound: place on the least-loaded DPU that has
                    // room, or give up on extra replicas.
                    if let Some(d) = (0..n)
                        .filter(|&d| {
                            dpu_vectors[d] + size <= input.max_dpu_vectors
                                && !cluster_to_dpus[c].contains(&d)
                        })
                        .min_by(|&a, &b| {
                            dpu_workload[a]
                                .partial_cmp(&dpu_workload[b])
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                    {
                        cluster_to_dpus[c].push(d);
                        dpu_workload[d] += per_replica_w;
                        dpu_vectors[d] += size;
                        placed += 1;
                    } else {
                        break;
                    }
                }
            }
        }
    }

    Placement {
        cluster_to_dpus,
        dpu_workload,
        dpu_vectors,
    }
}

/// The naive distribution used by PIM-naive and the Figure 11 ablation:
/// cluster `c` goes to DPU `c mod n`, no replication, no workload awareness.
pub fn place_round_robin(input: &PlacementInput) -> Placement {
    let n = input.num_dpus;
    let mut dpu_workload = vec![0.0f64; n];
    let mut dpu_vectors = vec![0usize; n];
    let mut cluster_to_dpus = vec![Vec::new(); input.num_clusters()];
    for (c, dpus) in cluster_to_dpus.iter_mut().enumerate() {
        let d = c % n;
        dpus.push(d);
        dpu_workload[d] += input.workload(c);
        dpu_vectors[d] += input.cluster_sizes[c];
    }
    Placement {
        cluster_to_dpus,
        dpu_workload,
        dpu_vectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_input(clusters: usize, dpus: usize) -> PlacementInput {
        // Zipf-ish frequencies and power-law sizes, like Figure 4.
        let sizes: Vec<usize> = (0..clusters)
            .map(|i| 1000 / (i + 1) + 10)
            .collect();
        let freqs: Vec<f64> = (0..clusters)
            .map(|i| 1.0 / ((i % 17) + 1) as f64)
            .collect();
        PlacementInput::new(sizes, freqs, dpus, 100_000)
    }

    #[test]
    fn every_cluster_gets_at_least_one_replica() {
        let input = skewed_input(64, 16);
        let p = place_pim_aware(&input);
        p.validate(&input).unwrap();
        assert!(p.total_replicas() >= 64);
    }

    #[test]
    fn hot_clusters_are_replicated() {
        let mut input = skewed_input(32, 16);
        // Make cluster 0 extremely hot: its workload alone is several times
        // the per-DPU target.
        input.cluster_sizes[0] = 5_000;
        input.frequencies[0] = 10.0;
        let p = place_pim_aware(&input);
        p.validate(&input).unwrap();
        assert!(
            p.replicas(0) > 1,
            "hot cluster should be replicated, got {}",
            p.replicas(0)
        );
        // Cold clusters stay single-copy.
        let cold = (1..32).map(|c| p.replicas(c)).max().unwrap();
        assert!(cold <= p.replicas(0));
    }

    #[test]
    fn pim_aware_is_more_balanced_than_round_robin() {
        let input = skewed_input(96, 24);
        let aware = place_pim_aware(&input);
        let naive = place_round_robin(&input);
        aware.validate(&input).unwrap();
        naive.validate(&input).unwrap();
        assert!(
            aware.max_to_avg_workload() < naive.max_to_avg_workload(),
            "aware {} vs naive {}",
            aware.max_to_avg_workload(),
            naive.max_to_avg_workload()
        );
        // And the PIM-aware ratio should be close to 1 (Figure 11).
        assert!(aware.max_to_avg_workload() < 1.5);
    }

    #[test]
    fn capacity_cap_is_respected() {
        let sizes = vec![60usize; 20];
        let freqs = vec![1.0; 20];
        // Each DPU can hold at most 2 clusters' worth of vectors.
        let input = PlacementInput::new(sizes, freqs, 10, 120);
        let p = place_pim_aware(&input);
        p.validate(&input).unwrap();
        assert!(p.dpu_vectors.iter().all(|&v| v <= 120));
    }

    #[test]
    fn uniform_workload_needs_no_replication() {
        let input = PlacementInput::new(vec![100; 32], vec![1.0; 32], 32, 10_000);
        let p = place_pim_aware(&input);
        p.validate(&input).unwrap();
        assert_eq!(p.total_replicas(), 32);
        assert!(p.max_to_avg_workload() < 1.01);
    }

    #[test]
    fn workload_and_target_math() {
        let input = PlacementInput::new(vec![10, 20], vec![2.0, 0.5], 2, 1000);
        assert_eq!(input.workload(0), 20.0);
        assert_eq!(input.workload(1), 10.0);
        assert_eq!(input.target_per_dpu(), 15.0);
        assert_eq!(input.num_clusters(), 2);
    }

    #[test]
    fn validate_catches_broken_placements() {
        let input = PlacementInput::new(vec![10, 10], vec![1.0, 1.0], 2, 1000);
        let mut p = place_round_robin(&input);
        p.cluster_to_dpus[1].clear();
        assert!(p.validate(&input).is_err());
        let mut p2 = place_round_robin(&input);
        p2.cluster_to_dpus[0] = vec![7];
        assert!(p2.validate(&input).is_err());
    }
}
