//! Asymmetric-distance lookup tables (LUTs) and ADC scans.
//!
//! Stage (b) of IVFPQ's online pipeline precomputes, for each sub-quantizer
//! `sub` and each codebook entry `code`, the squared distance between the
//! query's residual sub-vector and that centroid. Stage (c) then approximates
//! the query↔point distance by summing `m` table lookups — the Asymmetric
//! Distance Computation (ADC). The LUT is the central data structure the
//! UpANNS DPU kernel keeps in WRAM (8 KB at `m = 16` with `u16` entries).

use crate::distance::l2_squared;
use crate::pq::{ProductQuantizer, KSUB};

/// A lookup table of `m * 256` partial distances for one (query, cluster)
/// pair.
#[derive(Debug, Clone)]
pub struct LookupTable {
    m: usize,
    /// Row-major: entry `(sub, code)` is at `sub * KSUB + code`.
    table: Vec<f32>,
}

impl LookupTable {
    /// Builds the LUT for a query residual (`query - centroid`) against the
    /// quantizer's codebooks.
    ///
    /// # Panics
    /// Panics if `residual.len() != pq.dim()`.
    pub fn build(pq: &ProductQuantizer, residual: &[f32]) -> Self {
        assert_eq!(residual.len(), pq.dim(), "LUT residual dimension mismatch");
        let m = pq.m();
        let dsub = pq.dsub();
        let mut table = vec![0.0f32; m * KSUB];
        for sub in 0..m {
            let rv = &residual[sub * dsub..(sub + 1) * dsub];
            for code in 0..KSUB {
                table[sub * KSUB + code] = l2_squared(rv, pq.centroid(sub, code as u8));
            }
        }
        Self { m, table }
    }

    /// Number of sub-quantizers.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Partial distance for `(sub, code)`.
    #[inline]
    pub fn get(&self, sub: usize, code: u8) -> f32 {
        self.table[sub * KSUB + code as usize]
    }

    /// Looks up a *direct address* `sub * 256 + code`, the flattened layout
    /// UpANNS's PIM-friendly encoding addresses to avoid multiplications on
    /// the DPU (§4.3).
    #[inline]
    pub fn get_flat(&self, flat_index: usize) -> f32 {
        self.table[flat_index]
    }

    /// ADC distance of a single PQ code: the sum of `m` table lookups.
    ///
    /// # Panics
    /// Panics if `code.len() != self.m()`.
    #[inline]
    pub fn adc_distance(&self, code: &[u8]) -> f32 {
        assert_eq!(code.len(), self.m, "ADC code length mismatch");
        let mut sum = 0.0f32;
        for (sub, &c) in code.iter().enumerate() {
            sum += self.table[sub * KSUB + c as usize];
        }
        sum
    }

    /// Scans a packed code buffer (`n` codes of `m` bytes each) and returns
    /// the ADC distance of every code. This is the memory-bound inner loop
    /// that dominates billion-scale IVFPQ (Figure 1 / Figure 19).
    pub fn adc_scan(&self, packed_codes: &[u8]) -> Vec<f32> {
        assert!(
            packed_codes.len().is_multiple_of(self.m),
            "packed code buffer not a multiple of m"
        );
        packed_codes
            .chunks_exact(self.m)
            .map(|code| {
                let mut sum = 0.0f32;
                for (sub, &c) in code.iter().enumerate() {
                    sum += self.table[sub * KSUB + c as usize];
                }
                sum
            })
            .collect()
    }

    /// The raw table (`m * 256` floats).
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        &self.table
    }

    /// Size of the LUT in bytes when stored at `bytes_per_entry` precision.
    /// The paper stores `u16` entries: 8 KB for `m = 16`.
    pub fn size_bytes(&self, bytes_per_entry: usize) -> usize {
        self.m * KSUB * bytes_per_entry
    }

    /// Quantizes the table to `u16` with a per-table scale, mirroring the
    /// fixed-point LUT the DPU kernel stores in WRAM. Returns the quantized
    /// entries and the scale such that `value ≈ entry as f32 * scale`.
    pub fn quantize_u16(&self) -> (Vec<u16>, f32) {
        let max = self
            .table
            .iter()
            .copied()
            .fold(0.0f32, f32::max)
            .max(f32::MIN_POSITIVE);
        let scale = max / (u16::MAX as f32);
        let q = self
            .table
            .iter()
            .map(|&v| ((v / scale).round().min(u16::MAX as f32)) as u16)
            .collect();
        (q, scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Dataset;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn setup(dim: usize, m: usize) -> (ProductQuantizer, Dataset) {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut ds = Dataset::new(dim);
        let mut v = vec![0.0f32; dim];
        for _ in 0..400 {
            for x in v.iter_mut() {
                *x = rng.gen_range(-1.0..1.0);
            }
            ds.push(&v);
        }
        (ProductQuantizer::train(&ds, m, 3), ds)
    }

    #[test]
    fn adc_equals_decoded_distance() {
        // The ADC distance via the LUT must equal the exact distance between
        // the residual and the decoded (reconstructed) code, because both sum
        // the same per-subspace squared distances.
        let (pq, ds) = setup(8, 4);
        let residual = ds.vector(3).to_vec();
        let lut = LookupTable::build(&pq, &residual);
        for i in 0..20 {
            let code = pq.encode(ds.vector(i));
            let adc = lut.adc_distance(&code);
            let exact = l2_squared(&residual, &pq.decode(&code));
            assert!(
                (adc - exact).abs() < 1e-3,
                "ADC {adc} vs exact {exact} at {i}"
            );
        }
    }

    #[test]
    fn scan_matches_individual_lookups() {
        let (pq, ds) = setup(8, 4);
        let lut = LookupTable::build(&pq, ds.vector(0));
        let codes: Vec<Vec<u8>> = (0..10).map(|i| pq.encode(ds.vector(i))).collect();
        let packed = crate::pq::pack_codes(&codes, 4);
        let scanned = lut.adc_scan(&packed);
        assert_eq!(scanned.len(), 10);
        for (i, code) in codes.iter().enumerate() {
            assert_eq!(scanned[i], lut.adc_distance(code));
        }
    }

    #[test]
    fn flat_addressing_matches_2d() {
        let (pq, ds) = setup(8, 4);
        let lut = LookupTable::build(&pq, ds.vector(1));
        for sub in 0..4usize {
            for code in [0u8, 17, 255] {
                assert_eq!(lut.get(sub, code), lut.get_flat(sub * 256 + code as usize));
            }
        }
    }

    #[test]
    fn size_and_quantization() {
        let (pq, ds) = setup(16, 16);
        let lut = LookupTable::build(&pq, ds.vector(0));
        assert_eq!(lut.size_bytes(2), 16 * 256 * 2); // the paper's 8 KB
        let (q, scale) = lut.quantize_u16();
        assert_eq!(q.len(), 16 * 256);
        // Quantized values must reconstruct within one quantization step.
        for (i, &orig) in lut.as_flat().iter().enumerate() {
            let rec = q[i] as f32 * scale;
            assert!((rec - orig).abs() <= scale + 1e-6);
        }
    }

    #[test]
    fn zero_residual_gives_centroid_norms() {
        let (pq, _) = setup(8, 4);
        let zero = vec![0.0f32; 8];
        let lut = LookupTable::build(&pq, &zero);
        // Distance from zero to each centroid equals its squared norm.
        for sub in 0..4 {
            for code in [0u8, 100, 200] {
                let c = pq.centroid(sub, code);
                let norm: f32 = c.iter().map(|x| x * x).sum();
                assert!((lut.get(sub, code) - norm).abs() < 1e-4);
            }
        }
    }
}
