//! Distance kernels used throughout the substrate.
//!
//! IVFPQ (and the UpANNS paper) use L2 distance; inner-product is provided
//! because DEEP1B-style embedding workloads are usually maximum-inner-product
//! searches that Faiss maps onto the same machinery.

/// The similarity metric of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Squared Euclidean distance (smaller is closer).
    L2,
    /// Negative inner product (smaller is closer), so that all metrics can be
    /// minimized uniformly.
    InnerProduct,
}

impl Metric {
    /// Computes the metric between two vectors (smaller = closer for both).
    #[inline]
    pub fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::L2 => l2_squared(a, b),
            Metric::InnerProduct => -inner_product(a, b),
        }
    }
}

/// Squared L2 distance between two equal-length vectors.
///
/// # Panics
/// Panics (in debug builds) if the lengths differ.
#[inline]
pub fn l2_squared(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "distance dimension mismatch");
    // Manual 4-way unrolling: the auto-vectorizer handles the chunks and the
    // scalar tail handles the remainder; this is the standard shape Faiss and
    // the perf-book recommend for reductions.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        for lane in 0..4 {
            let d = a[i + lane] - b[i + lane];
            acc[lane] += d * d;
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Plain inner product of two equal-length vectors.
#[inline]
pub fn inner_product(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "distance dimension mismatch");
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        for lane in 0..4 {
            acc[lane] += a[i + lane] * b[i + lane];
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// Squared L2 norm of a vector.
#[inline]
pub fn norm_squared(a: &[f32]) -> f32 {
    inner_product(a, a)
}

/// Finds the index of the closest centroid to `v` among `centroids` (a flat
/// row-major buffer of `k` rows of length `dim`), returning
/// `(index, distance)`.
///
/// # Panics
/// Panics if `centroids` is empty or not a multiple of `dim`.
pub fn nearest_centroid(v: &[f32], centroids: &[f32], dim: usize) -> (usize, f32) {
    assert!(!centroids.is_empty(), "no centroids");
    assert!(centroids.len().is_multiple_of(dim), "centroid buffer not a multiple of dim");
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (i, c) in centroids.chunks_exact(dim).enumerate() {
        let d = l2_squared(v, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    (best, best_d)
}

/// Finds the indices of the `n` closest centroids to `v`, ordered from
/// closest to furthest. Used for cluster filtering (selecting `nprobe`
/// clusters per query).
pub fn nearest_centroids(v: &[f32], centroids: &[f32], dim: usize, n: usize) -> Vec<(usize, f32)> {
    assert!(centroids.len().is_multiple_of(dim), "centroid buffer not a multiple of dim");
    let k = centroids.len() / dim;
    let mut all: Vec<(usize, f32)> = centroids
        .chunks_exact(dim)
        .enumerate()
        .map(|(i, c)| (i, l2_squared(v, c)))
        .collect();
    let n = n.min(k);
    all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    all.truncate(n);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_matches_naive() {
        let a: Vec<f32> = (0..13).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..13).map(|i| (i as f32) * -0.25 + 1.0).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        let fast = l2_squared(&a, &b);
        assert!((naive - fast).abs() < 1e-3, "{naive} vs {fast}");
    }

    #[test]
    fn inner_product_matches_naive() {
        let a: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..9).map(|i| (i as f32) * 2.0).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((inner_product(&a, &b) - naive).abs() < 1e-3);
    }

    #[test]
    fn metric_orders_consistently() {
        let q = vec![1.0, 0.0];
        let close = vec![1.0, 0.1];
        let far = vec![-1.0, 0.0];
        assert!(Metric::L2.distance(&q, &close) < Metric::L2.distance(&q, &far));
        assert!(
            Metric::InnerProduct.distance(&q, &close) < Metric::InnerProduct.distance(&q, &far)
        );
    }

    #[test]
    fn norm_is_self_inner_product() {
        let v = vec![3.0, 4.0];
        assert_eq!(norm_squared(&v), 25.0);
    }

    #[test]
    fn nearest_centroid_picks_minimum() {
        let centroids = vec![0.0, 0.0, /* c0 */ 10.0, 10.0, /* c1 */ 2.0, 2.0 /* c2 */];
        let (idx, d) = nearest_centroid(&[1.9, 2.1], &centroids, 2);
        assert_eq!(idx, 2);
        assert!(d < 0.1);
    }

    #[test]
    fn nearest_centroids_sorted_and_truncated() {
        let centroids = vec![0.0, 0.0, 10.0, 10.0, 2.0, 2.0, 5.0, 5.0];
        let top = nearest_centroids(&[0.1, 0.1], &centroids, 2, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, 0);
        assert_eq!(top[1].0, 2);
        assert_eq!(top[2].0, 3);
        assert!(top[0].1 <= top[1].1 && top[1].1 <= top[2].1);

        // n larger than the number of centroids is clamped.
        let all = nearest_centroids(&[0.0, 0.0], &centroids, 2, 100);
        assert_eq!(all.len(), 4);
    }
}
