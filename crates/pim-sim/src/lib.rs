//! # pim-sim — a functional + cycle-cost simulator of the UPMEM PIM architecture
//!
//! The UpANNS paper evaluates on seven real UPMEM DIMMs. This environment has
//! none, so this crate models the architecture closely enough that every
//! performance effect the paper's evaluation depends on is reproduced:
//!
//! * **DPUs**: 350 MHz in-order cores with up to 24 hardware threads
//!   ("tasklets") sharing a 14-stage pipeline. A single tasklet can issue at
//!   most one instruction every [`REVISIT_INTERVAL`](cost::REVISIT_INTERVAL)
//!   cycles, so per-DPU throughput scales linearly with tasklets up to ~11 and
//!   then saturates (Figure 13 of the paper).
//! * **Memory hierarchy**: per-DPU 64 MB MRAM reachable only through DMA
//!   transfers whose latency is flat below ~256 B and linear beyond
//!   (Figure 7), a 64 KB WRAM scratchpad with single-cycle access and *no
//!   MMU* (so buffer reuse must be planned explicitly), and a 24 KB IRAM.
//! * **No inter-DPU communication**: all coordination goes through the host,
//!   and host↔DPU transfers are only parallel across DPUs when every DPU's
//!   buffer has the same size.
//! * **Energy**: 23.22 W peak per DIMM (Falevoz & Legriel), so
//!   energy ≈ peak power × simulated runtime, exactly the approximation the
//!   paper uses.
//!
//! Kernels are ordinary Rust closures executed *functionally* against a
//! [`DpuKernelCtx`]; every MRAM transfer, WRAM byte, arithmetic
//! instruction and synchronization point they perform is charged to a cycle
//! cost model, and the simulated batch time is the maximum over DPUs (the
//! paper: "the largest workload among DPUs determines the overall
//! performance").
//!
//! ```
//! use pim_sim::prelude::*;
//!
//! let mut sys = PimSystem::new(PimConfig::small_test());
//! // Stage some bytes into DPU 0's MRAM.
//! let addr = sys.mram_alloc(0, 1024).unwrap();
//! sys.push_to_dpus("load", &[DpuWrite::new(0, addr, vec![7u8; 1024])]).unwrap();
//! // Run a kernel on every DPU that reads the data back with 4 tasklets.
//! let report = sys.execute("scan", |ctx| {
//!     if ctx.dpu_id() == 0 {
//!         ctx.parallel("read", 4, |t| {
//!             let bytes = t.mram_read(addr, 256).to_vec();
//!             t.charge_arith(bytes.len() as u64, 0);
//!         });
//!     }
//! });
//! assert!(report.max_dpu_seconds > 0.0);
//! assert!(sys.elapsed_seconds() > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod cost;
pub mod dpu;
pub mod energy;
pub mod host;
pub mod mram;
pub mod stats;
pub mod tasklet;
pub mod wram;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::config::PimConfig;
    pub use crate::cost::{CostModel, REVISIT_INTERVAL};
    pub use crate::dpu::{Dpu, DpuStats};
    pub use crate::energy::EnergyModel;
    pub use crate::host::{DpuRead, DpuWrite, ExecReport, PimSystem};
    pub use crate::mram::{Mram, MramAddr};
    pub use crate::stats::StageBreakdown;
    pub use crate::tasklet::{DpuKernelCtx, TaskletCtx};
    pub use crate::wram::WramAllocator;
}

pub use config::PimConfig;
pub use host::{DpuWrite, PimSystem};
pub use tasklet::{DpuKernelCtx, TaskletCtx};
