//! The result cache: an LRU over exact (query, options) pairs.
//!
//! RAG and recommendation streams re-ask popular questions, so a small
//! serving-side cache short-circuits the engine entirely for repeats. The
//! key is the query's exact float bits plus the options that shaped the
//! answer (`k`, `nprobe`): a repeat with a different `k` must miss, because
//! its neighbor list would differ.

use annkit::topk::Neighbor;
use baselines::engine::QueryOptions;
use std::collections::HashMap;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    query_bits: Vec<u32>,
    k: usize,
    nprobe: usize,
}

impl CacheKey {
    fn new(query: &[f32], options: &QueryOptions) -> Self {
        Self {
            query_bits: query.iter().map(|x| x.to_bits()).collect(),
            k: options.k,
            nprobe: options.nprobe,
        }
    }
}

#[derive(Debug, Clone)]
struct CacheEntry {
    neighbors: Vec<Neighbor>,
    /// Simulated time the answer became available (a repeat arriving earlier
    /// must wait for it — no time-travel hits).
    ready_at: f64,
    last_used: u64,
}

/// A least-recently-used cache of query results with hit/miss accounting.
#[derive(Debug, Clone)]
pub struct ResultCache {
    capacity: usize,
    entries: HashMap<CacheKey, CacheEntry>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a query's cached neighbors, counting a hit or a miss and
    /// refreshing the entry's recency on a hit. A hit returns the neighbors
    /// together with the simulated time the answer became available.
    pub fn lookup(&mut self, query: &[f32], options: &QueryOptions) -> Option<(Vec<Neighbor>, f64)> {
        if self.capacity == 0 {
            self.misses += 1;
            return None;
        }
        self.clock += 1;
        let key = CacheKey::new(query, options);
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = self.clock;
                self.hits += 1;
                Some((entry.neighbors.clone(), entry.ready_at))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a query's neighbors (available from simulated time `ready_at`),
    /// evicting the least-recently-used entry when the cache is full.
    pub fn insert(
        &mut self,
        query: &[f32],
        options: &QueryOptions,
        neighbors: Vec<Neighbor>,
        ready_at: f64,
    ) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        let key = CacheKey::new(query, options);
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            // Scanning the map in hash order is safe here: `last_used` ticks
            // are unique per entry, so the minimum is unique and the scan
            // order cannot affect which key wins.
            // lint: allow(unordered-iter, reason = "min over unique last_used ticks is order-independent")
            let lru = self.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone());
            if let Some(lru) = lru {
                self.entries.remove(&lru);
            }
        }
        self.entries.insert(
            key,
            CacheEntry {
                neighbors,
                ready_at,
                last_used: self.clock,
            },
        );
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hits / lookups, 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(k: usize, nprobe: usize) -> QueryOptions {
        QueryOptions::new(k, nprobe)
    }

    fn hit(id: u64) -> Vec<Neighbor> {
        vec![Neighbor::new(id, 0.5)]
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut cache = ResultCache::new(8);
        let q = [1.0f32, 2.0];
        assert!(cache.lookup(&q, &opts(10, 8)).is_none());
        cache.insert(&q, &opts(10, 8), hit(7), 0.5);
        let (found, ready_at) = cache.lookup(&q, &opts(10, 8)).expect("cached");
        assert_eq!(found[0].id, 7);
        assert_eq!(ready_at, 0.5);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn different_options_are_different_entries() {
        let mut cache = ResultCache::new(8);
        let q = [1.0f32, 2.0];
        cache.insert(&q, &opts(10, 8), hit(1), 0.0);
        assert!(cache.lookup(&q, &opts(20, 8)).is_none(), "k differs");
        assert!(cache.lookup(&q, &opts(10, 4)).is_none(), "nprobe differs");
        assert!(cache.lookup(&q, &opts(10, 8)).is_some());
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = ResultCache::new(2);
        let (a, b, c) = ([1.0f32], [2.0f32], [3.0f32]);
        cache.insert(&a, &opts(10, 8), hit(1), 0.0);
        cache.insert(&b, &opts(10, 8), hit(2), 0.0);
        // Touch `a`, making `b` the LRU entry.
        assert!(cache.lookup(&a, &opts(10, 8)).is_some());
        cache.insert(&c, &opts(10, 8), hit(3), 0.0);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&a, &opts(10, 8)).is_some(), "a survived");
        assert!(cache.lookup(&b, &opts(10, 8)).is_none(), "b was evicted");
        assert!(cache.lookup(&c, &opts(10, 8)).is_some(), "c is resident");
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut cache = ResultCache::new(2);
        let (a, b) = ([1.0f32], [2.0f32]);
        cache.insert(&a, &opts(10, 8), hit(1), 0.0);
        cache.insert(&b, &opts(10, 8), hit(2), 0.0);
        cache.insert(&a, &opts(10, 8), hit(9), 1.0); // refresh, not eviction
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(&a, &opts(10, 8)).unwrap().0[0].id, 9);
        assert!(cache.lookup(&b, &opts(10, 8)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ResultCache::new(0);
        let q = [1.0f32];
        cache.insert(&q, &opts(10, 8), hit(1), 0.0);
        assert!(cache.lookup(&q, &opts(10, 8)).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 0);
    }
}
