//! Criterion microbenchmark of Opt1: Algorithm 1 (data placement) and
//! Algorithm 2 (query scheduling). The paper argues the scheduling overhead
//! is negligible (`O(|Q| × nprobe)`); this bench quantifies it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use upanns::placement::{place_pim_aware, place_round_robin, PlacementInput};
use upanns::scheduling::schedule_queries;

fn skewed_input(clusters: usize, dpus: usize, seed: u64) -> PlacementInput {
    let mut rng = SmallRng::seed_from_u64(seed);
    let sizes: Vec<usize> = (0..clusters)
        .map(|i| 200_000 / (i + 1) + rng.gen_range(10usize..100))
        .collect();
    let freqs: Vec<f64> = (0..clusters)
        .map(|i| 1.0 / ((i % 97) + 1) as f64)
        .collect();
    PlacementInput::new(sizes, freqs, dpus, usize::MAX / 2)
}

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement");
    group.sample_size(20);
    for &(clusters, dpus) in &[(1024usize, 896usize), (4096, 896), (4096, 2560)] {
        let input = skewed_input(clusters, dpus, 7);
        let label = format!("c{clusters}_d{dpus}");
        group.bench_with_input(BenchmarkId::new("pim_aware", &label), &input, |b, input| {
            b.iter(|| std::hint::black_box(place_pim_aware(input)));
        });
        group.bench_with_input(BenchmarkId::new("round_robin", &label), &input, |b, input| {
            b.iter(|| std::hint::black_box(place_round_robin(input)));
        });
    }
    group.finish();
}

fn bench_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_scheduling");
    group.sample_size(20);
    let input = skewed_input(1024, 896, 11);
    let placement = place_pim_aware(&input);
    let mut rng = SmallRng::seed_from_u64(3);
    for &(queries, nprobe) in &[(1000usize, 32usize), (1000, 64)] {
        let filtered: Vec<Vec<usize>> = (0..queries)
            .map(|_| {
                let mut probes: Vec<usize> =
                    (0..nprobe).map(|_| rng.gen_range(0..1024)).collect();
                probes.sort_unstable();
                probes.dedup();
                probes
            })
            .collect();
        let label = format!("q{queries}_p{nprobe}");
        group.bench_with_input(
            BenchmarkId::from_parameter(&label),
            &filtered,
            |b, filtered| {
                b.iter(|| {
                    std::hint::black_box(schedule_queries(
                        filtered,
                        &placement,
                        &input.cluster_sizes,
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_placement, bench_scheduling);
criterion_main!(benches);
