//! Capacity planning: how many UPMEM DIMMs does a deployment need?
//!
//! The paper's scalability study (Figure 20) sweeps the number of DPUs from
//! 500 to the platform maximum of 2560 (20 DIMMs) and compares against an
//! A100 at equal peak power. This example performs the same exercise on a
//! reduced-scale SIFT-like dataset: it measures QPS at several DPU counts,
//! fits a linear model, extrapolates to 2560 DPUs, and reports the iso-power
//! and iso-cost crossover points against the GPU baseline.
//!
//! Run with:
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use annkit::prelude::*;
use baselines::prelude::*;
use pim_sim::config::PimConfig;
use pim_sim::energy::EnergyModel;
use upanns::prelude::*;

fn main() {
    let n = 30_000;
    println!("Building a SIFT-like dataset ({n} vectors) ...");
    let dataset = SyntheticSpec::sift_like(n)
        .with_clusters(128)
        .with_seed(3)
        .generate_with_meta();
    let index = IvfPqIndex::train(
        &dataset.vectors,
        &IvfPqParams::new(128, 16).with_train_size(9_000),
        2,
    );
    let history = WorkloadSpec::new(2_000).with_seed(31).generate(&dataset);
    let batch = WorkloadSpec::new(300).with_seed(32).generate(&dataset);
    let nprobe = 16;
    let k = 10;

    // The paper's scalability study runs at 500-million scale; project the
    // reduced dataset to that size.
    let scale = 5e8 / n as f64;

    // GPU reference point.
    let mut gpu = GpuFaissEngine::new(&index).with_work_scale(scale);
    let gpu_out = gpu.search_batch(&batch.queries, nprobe, k);
    let gpu_energy = gpu.energy_model();
    println!(
        "Faiss-GPU reference: {:.0} QPS at {:.0} W (≈ {:.2} QPS/W)\n",
        gpu_out.qps(),
        gpu_energy.peak_watts,
        gpu_out.qps_per_watt(&gpu_energy)
    );

    // Sweep the DPU count, as in Figure 20.
    let dpu_counts = [512usize, 640, 768, 896];
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>12}",
        "#DPUs", "QPS", "Watts", "QPS/W", "QPS/GPU-QPS"
    );
    let mut samples = Vec::new();
    for &dpus in &dpu_counts {
        let mut engine = UpAnnsBuilder::new(&index)
            .with_config(UpAnnsConfig::upanns().with_work_scale(scale))
            .with_pim_config(PimConfig::with_dpus(dpus))
            .with_history(&history.queries, nprobe)
            .build();
        let out = engine.search_batch(&batch.queries, nprobe, k);
        let energy = engine.energy_model();
        println!(
            "{:<8} {:>10.0} {:>10.1} {:>10.2} {:>12.2}",
            dpus,
            out.qps(),
            energy.peak_watts,
            out.qps_per_watt(&energy),
            out.qps() / gpu_out.qps()
        );
        samples.push((dpus as f64, out.qps()));
    }

    // Linear regression QPS ≈ a·DPUs + b, as the paper does to extrapolate
    // beyond the DIMMs it physically has.
    let (a, b) = linear_fit(&samples);
    println!("\nLinear fit: QPS ≈ {a:.2} · #DPUs + {b:.1}");
    for &dpus in &[896usize, 1654, 2560] {
        let qps = a * dpus as f64 + b;
        let watts = PimConfig::with_dpus(dpus).peak_watts();
        let note = match dpus {
            896 => "the paper's 7-DIMM testbed",
            1654 => "iso-power with one A100 (≈300 W)",
            _ => "full 20-DIMM platform",
        };
        println!(
            "  {dpus:>5} DPUs → projected {qps:>8.0} QPS at {watts:>5.0} W ({:.2}x GPU)  [{note}]",
            qps / gpu_out.qps()
        );
    }

    // Cost view.
    let pim20 = EnergyModel::pim(&PimConfig::with_dpus(2560));
    println!(
        "\nHardware cost: 20 UPMEM DIMMs ≈ {:.0} USD vs A100 ≈ {:.0} USD ({:.1}x cheaper).",
        pim20.price_usd,
        gpu_energy.price_usd,
        gpu_energy.price_usd / pim20.price_usd
    );
}

/// Ordinary least squares for y = a·x + b.
fn linear_fit(samples: &[(f64, f64)]) -> (f64, f64) {
    let n = samples.len() as f64;
    let sx: f64 = samples.iter().map(|(x, _)| x).sum();
    let sy: f64 = samples.iter().map(|(_, y)| y).sum();
    let sxx: f64 = samples.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = samples.iter().map(|(x, y)| x * y).sum();
    let a = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let b = (sy - a * sx) / n;
    (a, b)
}
