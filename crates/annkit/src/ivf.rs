//! The IVFPQ index: an inverted file of PQ-encoded residuals.
//!
//! Offline, vectors are assigned to one of `nlist` coarse clusters (IVF) and
//! each vector's residual against its centroid is PQ-encoded into `m` bytes.
//! Online, a query probes the `nprobe` nearest clusters, builds one LUT per
//! probed cluster and ADC-scans that cluster's codes (see [`crate::lut`]).
//!
//! This structure is shared by every engine in the repository: the CPU/GPU
//! baselines scan it directly, and the PIM engines re-distribute its inverted
//! lists across DPUs.

use crate::distance::nearest_centroids;
use crate::kmeans::{KMeans, KMeansParams};
use crate::lut::LookupTable;
use crate::pq::{pack_codes, PqCode, ProductQuantizer};
use crate::topk::{Neighbor, TopK};
use crate::vector::{residual, Dataset};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Training / structural parameters of an IVFPQ index.
#[derive(Debug, Clone)]
pub struct IvfPqParams {
    /// Number of coarse clusters (the paper's `|C|` / "IVF" knob:
    /// 4096, 8192, 16384 at billion scale).
    pub nlist: usize,
    /// Number of PQ sub-quantizers (`M`): 16 for SIFT1B, 12 for DEEP1B, 20
    /// for SPACEV1B in the paper.
    pub m: usize,
    /// Number of vectors sampled for training the coarse quantizer and PQ
    /// codebooks (`None` = use the whole dataset).
    pub train_size: Option<usize>,
    /// Lloyd iterations for the coarse quantizer.
    pub coarse_iterations: usize,
}

impl IvfPqParams {
    /// Creates parameters for `nlist` clusters and `m` sub-quantizers with
    /// default training settings.
    pub fn new(nlist: usize, m: usize) -> Self {
        Self {
            nlist,
            m,
            train_size: None,
            coarse_iterations: 20,
        }
    }

    /// Caps the number of training vectors.
    pub fn with_train_size(mut self, n: usize) -> Self {
        self.train_size = Some(n);
        self
    }

    /// Overrides the coarse-quantizer iteration count.
    pub fn with_coarse_iterations(mut self, it: usize) -> Self {
        self.coarse_iterations = it;
        self
    }
}

/// One entry of an inverted list: the original row id and its PQ code.
#[derive(Debug, Clone, PartialEq)]
pub struct ListEntry {
    /// Row id in the original dataset.
    pub id: u64,
    /// `m`-byte PQ code of the residual.
    pub code: PqCode,
}

/// One inverted list (cluster): parallel arrays of ids and packed codes.
#[derive(Debug, Clone, Default)]
pub struct InvertedList {
    ids: Vec<u64>,
    /// Packed codes: `len * m` bytes.
    packed: Vec<u8>,
}

impl InvertedList {
    /// Number of vectors in the list.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Row ids stored in this list.
    #[inline]
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Packed PQ codes (`len * m` bytes).
    #[inline]
    pub fn packed_codes(&self) -> &[u8] {
        &self.packed
    }

    /// The code of entry `i` given the index's `m`.
    #[inline]
    pub fn code(&self, i: usize, m: usize) -> &[u8] {
        &self.packed[i * m..(i + 1) * m]
    }

    /// Byte footprint of this list (ids + codes), the quantity the placement
    /// algorithm balances across DPUs.
    pub fn bytes(&self, m: usize) -> usize {
        self.ids.len() * (std::mem::size_of::<u64>() + m)
    }

    pub(crate) fn push(&mut self, id: u64, code: &[u8]) {
        self.ids.push(id);
        self.packed.extend_from_slice(code);
    }

    /// Rebuilds the list without the entry at position `i`, preserving the
    /// order of the remaining entries (copy-on-write delete support).
    pub(crate) fn without_entry(&self, i: usize, m: usize) -> InvertedList {
        let mut ids = Vec::with_capacity(self.ids.len().saturating_sub(1));
        let mut packed = Vec::with_capacity(self.packed.len().saturating_sub(m));
        for (j, &id) in self.ids.iter().enumerate() {
            if j == i {
                continue;
            }
            ids.push(id);
            packed.extend_from_slice(&self.packed[j * m..(j + 1) * m]);
        }
        InvertedList { ids, packed }
    }
}

/// A trained, populated IVFPQ index.
#[derive(Debug, Clone)]
pub struct IvfPqIndex {
    params: IvfPqParams,
    coarse: KMeans,
    pq: ProductQuantizer,
    lists: Vec<InvertedList>,
    dim: usize,
    ntotal: u64,
}

impl IvfPqIndex {
    /// Trains the coarse quantizer and PQ codebooks on (a sample of) `data`
    /// and adds every vector of `data` to the index.
    ///
    /// # Panics
    /// Panics if `data.dim() % params.m != 0` or `data.len() < params.nlist`.
    pub fn train(data: &Dataset, params: &IvfPqParams, seed: u64) -> Self {
        let mut index = Self::train_empty(data, params, seed);
        index.add(data, 0);
        index
    }

    /// Trains quantizers only, leaving the inverted lists empty (vectors are
    /// added separately with [`add`](Self::add)). Useful when the corpus is
    /// generated in shards.
    pub fn train_empty(data: &Dataset, params: &IvfPqParams, seed: u64) -> Self {
        assert!(params.nlist > 0, "nlist must be positive");
        assert!(
            data.len() >= params.nlist,
            "need at least nlist={} training vectors, got {}",
            params.nlist,
            data.len()
        );
        let dim = data.dim();

        // Optionally subsample the training set.
        let mut rng = SmallRng::seed_from_u64(seed);
        let sampled;
        let train: &Dataset = match params.train_size {
            Some(cap) if data.len() > cap && cap >= params.nlist && cap >= crate::pq::KSUB => {
                let mut idx: Vec<usize> = (0..data.len()).collect();
                for i in 0..cap {
                    let j = rng.gen_range(i..data.len());
                    idx.swap(i, j);
                }
                idx.truncate(cap);
                sampled = data.gather(&idx);
                &sampled
            }
            _ => data,
        };

        let kparams = KMeansParams::new(params.nlist)
            .with_max_iterations(params.coarse_iterations);
        let coarse = KMeans::train(train, &kparams, seed);

        // PQ is trained on residuals, as in Faiss's IndexIVFPQ.
        let mut residuals = Dataset::with_capacity(dim, train.len());
        for v in train.iter() {
            let (c, _) = coarse.assign(v);
            residuals.push(&residual(v, coarse.centroid(c)));
        }
        let pq = ProductQuantizer::train(&residuals, params.m, seed.wrapping_add(1));

        let lists = vec![InvertedList::default(); params.nlist];
        Self {
            params: params.clone(),
            coarse,
            pq,
            lists,
            dim,
            ntotal: 0,
        }
    }

    /// Adds all vectors of `data` to the index, assigning row ids
    /// `id_offset..id_offset + data.len()`.
    pub fn add(&mut self, data: &Dataset, id_offset: u64) {
        assert_eq!(data.dim(), self.dim, "add dimension mismatch");
        for (i, v) in data.iter().enumerate() {
            let (c, _) = self.coarse.assign(v);
            let code = self.pq.encode(&residual(v, self.coarse.centroid(c)));
            self.lists[c].push(id_offset + i as u64, &code);
        }
        self.ntotal += data.len() as u64;
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of coarse clusters.
    #[inline]
    pub fn nlist(&self) -> usize {
        self.params.nlist
    }

    /// Number of PQ sub-quantizers.
    #[inline]
    pub fn m(&self) -> usize {
        self.params.m
    }

    /// Total number of indexed vectors.
    #[inline]
    pub fn ntotal(&self) -> u64 {
        self.ntotal
    }

    /// The trained coarse quantizer.
    #[inline]
    pub fn coarse(&self) -> &KMeans {
        &self.coarse
    }

    /// The trained product quantizer.
    #[inline]
    pub fn pq(&self) -> &ProductQuantizer {
        &self.pq
    }

    /// The inverted list of cluster `c`.
    #[inline]
    pub fn list(&self, c: usize) -> &InvertedList {
        &self.lists[c]
    }

    /// All inverted lists.
    #[inline]
    pub fn lists(&self) -> &[InvertedList] {
        &self.lists
    }

    /// Sizes of all inverted lists (the cluster-size skew of Figure 4b).
    ///
    /// Allocates a fresh `Vec` per call; hot paths that only need to *read*
    /// the sizes (per-batch scheduling, compaction-skew decision ticks)
    /// should use [`iter_list_sizes`](Self::iter_list_sizes) or the cached
    /// slice on [`crate::mutation::IndexSnapshot::list_sizes`] instead.
    pub fn list_sizes(&self) -> Vec<usize> {
        self.iter_list_sizes().collect()
    }

    /// Allocation-free view of the inverted-list sizes.
    #[inline]
    pub fn iter_list_sizes(&self) -> impl Iterator<Item = usize> + '_ {
        self.lists.iter().map(|l| l.len())
    }

    /// A structurally identical index with the same trained quantizers but
    /// empty inverted lists — the starting point for rebuilding the corpus
    /// from a mutation log (see `tests/mutation_snapshot.rs`) or folding a
    /// compacted view back into a base index.
    pub fn fresh_like(&self) -> IvfPqIndex {
        Self {
            params: self.params.clone(),
            coarse: self.coarse.clone(),
            pq: self.pq.clone(),
            lists: vec![InvertedList::default(); self.params.nlist],
            dim: self.dim,
            ntotal: 0,
        }
    }

    /// Adds a single vector under an explicit row id (streaming-ingest path;
    /// the batch [`add`](Self::add) derives ids from an offset instead).
    pub fn add_one(&mut self, v: &[f32], id: u64) {
        assert_eq!(v.len(), self.dim, "add dimension mismatch");
        let (c, _) = self.coarse.assign(v);
        let code = self.pq.encode(&residual(v, self.coarse.centroid(c)));
        self.lists[c].push(id, &code);
        self.ntotal += 1;
    }

    /// Replaces the inverted lists wholesale (compaction fold support); the
    /// caller is responsible for `lists` holding exactly `ntotal` entries.
    pub(crate) fn replace_lists(&mut self, lists: Vec<InvertedList>, ntotal: u64) {
        assert_eq!(lists.len(), self.params.nlist, "list count mismatch");
        self.lists = lists;
        self.ntotal = ntotal;
    }

    /// Total compressed footprint in bytes (ids + codes), the number that
    /// makes IVFPQ feasible at billion scale.
    pub fn compressed_bytes(&self) -> usize {
        self.lists.iter().map(|l| l.bytes(self.params.m)).sum()
    }

    /// Stage (a) — cluster filtering: the `nprobe` coarse clusters nearest to
    /// the query, closest first.
    pub fn filter_clusters(&self, query: &[f32], nprobe: usize) -> Vec<(usize, f32)> {
        nearest_centroids(query, self.coarse.centroids_flat(), self.dim, nprobe)
    }

    /// Stage (b) — LUT construction for one probed cluster.
    pub fn build_lut(&self, query: &[f32], cluster: usize) -> LookupTable {
        let res = residual(query, self.coarse.centroid(cluster));
        LookupTable::build(&self.pq, &res)
    }

    /// Full single-query search: probes `nprobe` clusters and returns the
    /// `k` nearest neighbors by ADC distance (the reference sequential
    /// implementation that every engine must agree with).
    pub fn search(&self, query: &[f32], nprobe: usize, k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let mut topk = TopK::new(k);
        for (cluster, _) in self.filter_clusters(query, nprobe) {
            let lut = self.build_lut(query, cluster);
            let list = &self.lists[cluster];
            for (i, code) in list.packed.chunks_exact(self.params.m).enumerate() {
                topk.push(list.ids[i], lut.adc_distance(code));
            }
        }
        topk.into_sorted()
    }

    /// Batched search (the paper processes 1,000 queries at a time).
    pub fn search_batch(&self, queries: &Dataset, nprobe: usize, k: usize) -> Vec<Vec<Neighbor>> {
        queries
            .iter()
            .map(|q| self.search(q, nprobe, k))
            .collect()
    }
}

/// Re-packs a set of [`ListEntry`]s into an [`InvertedList`]; helper for
/// engines that need to build per-DPU list replicas.
pub fn build_list(entries: &[ListEntry], m: usize) -> InvertedList {
    let ids: Vec<u64> = entries.iter().map(|e| e.id).collect();
    let codes: Vec<PqCode> = entries.iter().map(|e| e.code.clone()).collect();
    InvertedList {
        ids,
        packed: pack_codes(&codes, m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::recall::recall_at_k;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn clustered_dataset(n: usize, dim: usize, clusters: usize, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let centers: Vec<Vec<f32>> = (0..clusters)
            .map(|_| (0..dim).map(|_| rng.gen_range(-50.0..50.0)).collect())
            .collect();
        let mut ds = Dataset::new(dim);
        let mut v = vec![0.0f32; dim];
        for i in 0..n {
            let c = &centers[i % clusters];
            for (x, cx) in v.iter_mut().zip(c) {
                *x = cx + rng.gen_range(-2.0f32..2.0);
            }
            ds.push(&v);
        }
        ds
    }

    #[test]
    fn all_vectors_are_indexed_exactly_once() {
        let ds = clustered_dataset(800, 16, 8, 1);
        let index = IvfPqIndex::train(&ds, &IvfPqParams::new(8, 4), 42);
        assert_eq!(index.ntotal(), 800);
        let total: usize = index.list_sizes().iter().sum();
        assert_eq!(total, 800);

        // Every id 0..800 appears exactly once across lists.
        let mut seen = vec![false; 800];
        for list in index.lists() {
            for &id in list.ids() {
                assert!(!seen[id as usize], "id {id} indexed twice");
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn search_finds_itself_with_full_probe() {
        let ds = clustered_dataset(600, 16, 6, 3);
        let index = IvfPqIndex::train(&ds, &IvfPqParams::new(6, 4), 7);
        // With nprobe = nlist the query's own cluster is always scanned, so
        // the query point itself should virtually always be in the top-5.
        let mut hits = 0;
        for qi in (0..600).step_by(60) {
            let res = index.search(ds.vector(qi), 6, 5);
            if res.iter().any(|n| n.id == qi as u64) {
                hits += 1;
            }
        }
        assert!(hits >= 8, "only {hits}/10 self-hits");
    }

    #[test]
    fn recall_against_exact_search_is_reasonable() {
        let ds = clustered_dataset(1000, 16, 10, 5);
        let index = IvfPqIndex::train(&ds, &IvfPqParams::new(10, 8), 11);
        let flat = FlatIndex::new(&ds);
        let queries = ds.gather(&(0..20).map(|i| i * 37).collect::<Vec<_>>());
        let approx = index.search_batch(&queries, 10, 10);
        let exact = flat.search_batch(&queries, 10);
        let recall = recall_at_k(&approx, &exact, 10);
        assert!(recall > 0.55, "recall {recall} too low");
    }

    #[test]
    fn higher_nprobe_never_decreases_candidate_coverage() {
        let ds = clustered_dataset(500, 16, 8, 9);
        let index = IvfPqIndex::train(&ds, &IvfPqParams::new(8, 4), 13);
        let q = ds.vector(17);
        let few = index.filter_clusters(q, 2);
        let many = index.filter_clusters(q, 6);
        assert_eq!(few.len(), 2);
        assert_eq!(many.len(), 6);
        // The closest clusters are a prefix of the bigger probe set.
        assert_eq!(few[0].0, many[0].0);
        assert_eq!(few[1].0, many[1].0);
    }

    #[test]
    fn compressed_footprint_is_much_smaller_than_raw() {
        let ds = clustered_dataset(1000, 32, 8, 2);
        let index = IvfPqIndex::train(&ds, &IvfPqParams::new(8, 8), 3);
        // Raw: 1000 * 32 * 4 = 128 kB. Compressed codes+ids: 1000 * (8 + 8) = 16 kB.
        assert!(index.compressed_bytes() * 4 < ds.raw_bytes());
    }

    #[test]
    fn add_with_offset_assigns_contiguous_ids() {
        let ds = clustered_dataset(400, 16, 4, 8);
        let mut index = IvfPqIndex::train_empty(&ds, &IvfPqParams::new(4, 4), 21);
        index.add(&ds, 1000);
        let mut ids: Vec<u64> = index.lists().iter().flat_map(|l| l.ids().to_vec()).collect();
        ids.sort_unstable();
        assert_eq!(ids.first(), Some(&1000));
        assert_eq!(ids.last(), Some(&1399));
        assert_eq!(ids.len(), 400);
    }

    #[test]
    fn build_list_roundtrip() {
        let entries = vec![
            ListEntry { id: 5, code: vec![1, 2] },
            ListEntry { id: 9, code: vec![3, 4] },
        ];
        let list = build_list(&entries, 2);
        assert_eq!(list.len(), 2);
        assert_eq!(list.ids(), &[5, 9]);
        assert_eq!(list.code(1, 2), &[3, 4]);
        assert_eq!(list.bytes(2), 2 * (8 + 2));
    }
}
