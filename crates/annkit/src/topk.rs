//! Bounded heaps and top-k selection.
//!
//! IVFPQ's final stage keeps the `k` smallest approximate distances seen so
//! far. The canonical structure is a bounded *max*-heap of size `k`: a new
//! candidate is inserted only if it beats the current worst (the root), which
//! is exactly the structure the UpANNS DPU kernel keeps per tasklet
//! (Figure 6) and later converts to a min-heap for the pruned merge
//! (Figure 9, reproduced in `upanns::topk_prune`).

use crate::simd::{self, Backend, SCAN_LANES};
use std::cmp::Ordering;

/// A candidate neighbor: dataset row id plus its (approximate) distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row identifier within the dataset.
    pub id: u64,
    /// Distance to the query (smaller is closer).
    pub distance: f32,
}

impl Neighbor {
    /// Creates a neighbor.
    #[inline]
    pub fn new(id: u64, distance: f32) -> Self {
        Self { id, distance }
    }
}

impl Eq for Neighbor {}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        // Total order by distance, then id, treating NaN as the greatest
        // possible distance so it never wins a top-k slot.
        match self
            .distance
            .partial_cmp(&other.distance)
        {
            Some(o) => o.then(self.id.cmp(&other.id)),
            None => {
                if self.distance.is_nan() && other.distance.is_nan() {
                    self.id.cmp(&other.id)
                } else if self.distance.is_nan() {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
        }
    }
}

/// A bounded max-heap keeping the `k` smallest [`Neighbor`]s pushed into it.
///
/// `push` is O(log k) once the heap is full and O(1) when the candidate is
/// worse than the current k-th best, which is the common case during scans
/// and the reason the structure (rather than a sort) is used in every engine
/// in this repository.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    /// Binary max-heap laid out in a flat vector (root at index 0).
    heap: Vec<Neighbor>,
    /// Number of candidates offered (for pruning statistics).
    pushed: u64,
    /// Number of candidates actually inserted into the heap.
    inserted: u64,
}

impl TopK {
    /// Creates a collector for the `k` nearest neighbors.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k size must be positive");
        Self {
            k,
            heap: Vec::with_capacity(k),
            pushed: 0,
            inserted: 0,
        }
    }

    /// The configured `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of neighbors currently held (≤ k).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no neighbor has been accepted yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current worst (largest) distance in the heap, or `f32::INFINITY`
    /// if the heap is not yet full. A candidate with a distance ≥ this bound
    /// can never enter the result.
    #[inline]
    pub fn threshold(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::INFINITY
        } else {
            self.heap[0].distance
        }
    }

    /// Offers a candidate; returns `true` if it was inserted.
    #[inline]
    pub fn push(&mut self, id: u64, distance: f32) -> bool {
        self.pushed += 1;
        if self.heap.len() < self.k {
            self.heap.push(Neighbor::new(id, distance));
            self.sift_up(self.heap.len() - 1);
            self.inserted += 1;
            true
        } else if Neighbor::new(id, distance) < self.heap[0] {
            self.heap[0] = Neighbor::new(id, distance);
            self.sift_down(0);
            self.inserted += 1;
            true
        } else {
            false
        }
    }

    /// Offers a run of candidates with consecutive ids (`base_id`,
    /// `base_id + 1`, …) — the shape every scan loop produces — on the best
    /// runtime-detected backend. Returns the number inserted.
    ///
    /// Behaves exactly like calling [`push`](Self::push) for each candidate
    /// in order (same final heap, same offered/accepted counters), but once
    /// the heap is full it pre-filters each block of [`SCAN_LANES`]
    /// distances against [`threshold`](Self::threshold) with one vector
    /// compare, so the common all-rejected case never touches the heap.
    #[inline]
    pub fn push_batch(&mut self, base_id: u64, distances: &[f32]) -> usize {
        self.push_batch_with(simd::active(), base_id, distances)
    }

    /// [`push_batch`](Self::push_batch) on an explicit [`Backend`], used by
    /// the equivalence tests and bench variants.
    pub fn push_batch_with(&mut self, backend: Backend, base_id: u64, distances: &[f32]) -> usize {
        let mut inserted = 0usize;
        let mut i = 0usize;
        let n = distances.len();
        while i < n {
            if self.heap.len() < self.k {
                // Fill phase: push accepts everything (even NaN) until the
                // heap is full, so the pre-filter must not run here.
                if self.push(base_id + i as u64, distances[i]) {
                    inserted += 1;
                }
                i += 1;
                continue;
            }
            let end = (i + SCAN_LANES).min(n);
            let block = &distances[i..end];
            let threshold = self.heap[0].distance;
            let mask = if threshold.is_nan() {
                // A NaN root loses to every real candidate under
                // Neighbor::cmp, but `d <= NaN` is false in every lane —
                // bypass the filter and let push re-check exactly.
                (1u32 << block.len()) - 1
            } else {
                // `<=`, not `<`: a candidate at exactly the threshold can
                // still win on the id tie-break. The threshold only
                // tightens within a block, so lanes filtered out here would
                // be rejected by every later push too.
                simd::le_mask_with(backend, block, threshold)
            };
            let mut remaining = mask;
            while remaining != 0 {
                let lane = remaining.trailing_zeros() as usize;
                remaining &= remaining - 1;
                if self.push(base_id + (i + lane) as u64, distances[i + lane]) {
                    inserted += 1;
                }
            }
            // Filtered-out lanes were still offered.
            self.pushed += (block.len() - mask.count_ones() as usize) as u64;
            i = end;
        }
        inserted
    }

    /// Merges another collector into this one.
    pub fn merge(&mut self, other: &TopK) {
        for n in &other.heap {
            self.push(n.id, n.distance);
        }
    }

    /// Total number of candidates offered via [`push`](Self::push).
    #[inline]
    pub fn offered(&self) -> u64 {
        self.pushed
    }

    /// Number of candidates that actually entered the heap.
    #[inline]
    pub fn accepted(&self) -> u64 {
        self.inserted
    }

    /// Consumes the collector, returning neighbors sorted from closest to
    /// furthest.
    pub fn into_sorted(mut self) -> Vec<Neighbor> {
        // Neighbor::cmp is the single source of ordering truth for every
        // comparator site (heap, sorts, merges): total, NaN-last, id
        // tie-broken.
        self.heap.sort_by(Neighbor::cmp);
        self.heap
    }

    /// Returns the neighbors sorted from closest to furthest without
    /// consuming the collector.
    pub fn sorted(&self) -> Vec<Neighbor> {
        let mut v = self.heap.clone();
        v.sort_by(Neighbor::cmp);
        v
    }

    /// Exposes the raw (heap-ordered) contents; used by the pruned merge in
    /// `upanns::topk_prune`, which re-heapifies them as a min-heap.
    pub fn as_heap_slice(&self) -> &[Neighbor] {
        &self.heap
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i] > self.heap[parent] {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut largest = i;
            if l < n && self.heap[l] > self.heap[largest] {
                largest = l;
            }
            if r < n && self.heap[r] > self.heap[largest] {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.heap.swap(i, largest);
            i = largest;
        }
    }
}

/// Exact top-k by full sort; O(n log n). Used as the reference in tests and by
/// the "GPU" baseline whose top-k stage is modeled as a sort-based selection.
pub fn topk_by_sort(candidates: &[(u64, f32)], k: usize) -> Vec<Neighbor> {
    let mut v: Vec<Neighbor> = candidates
        .iter()
        .map(|&(id, d)| Neighbor::new(id, d))
        .collect();
    v.sort_by(Neighbor::cmp);
    v.truncate(k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest() {
        let mut tk = TopK::new(3);
        for (i, d) in [5.0, 1.0, 4.0, 0.5, 9.0, 2.0].iter().enumerate() {
            tk.push(i as u64, *d);
        }
        let out = tk.into_sorted();
        let dists: Vec<f32> = out.iter().map(|n| n.distance).collect();
        assert_eq!(dists, vec![0.5, 1.0, 2.0]);
        let ids: Vec<u64> = out.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 1, 5]);
    }

    #[test]
    fn threshold_tracks_worst() {
        let mut tk = TopK::new(2);
        assert_eq!(tk.threshold(), f32::INFINITY);
        tk.push(0, 3.0);
        assert_eq!(tk.threshold(), f32::INFINITY); // not full yet
        tk.push(1, 1.0);
        assert_eq!(tk.threshold(), 3.0);
        tk.push(2, 2.0);
        assert_eq!(tk.threshold(), 2.0);
        assert!(!tk.push(3, 10.0));
    }

    #[test]
    fn matches_sort_reference() {
        let candidates: Vec<(u64, f32)> = (0..200)
            .map(|i| (i as u64, ((i * 37) % 101) as f32 * 0.7))
            .collect();
        let mut tk = TopK::new(10);
        for &(id, d) in &candidates {
            tk.push(id, d);
        }
        let heap_out = tk.into_sorted();
        let sort_out = topk_by_sort(&candidates, 10);
        assert_eq!(heap_out.len(), sort_out.len());
        for (a, b) in heap_out.iter().zip(&sort_out) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.distance, b.distance);
        }
    }

    #[test]
    fn merge_combines_collectors() {
        let mut a = TopK::new(3);
        a.push(1, 1.0);
        a.push(2, 5.0);
        let mut b = TopK::new(3);
        b.push(3, 0.5);
        b.push(4, 4.0);
        a.merge(&b);
        let ids: Vec<u64> = a.into_sorted().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 1, 4]);
    }

    #[test]
    fn counts_offered_and_accepted() {
        let mut tk = TopK::new(1);
        tk.push(0, 1.0);
        tk.push(1, 2.0);
        tk.push(2, 0.5);
        assert_eq!(tk.offered(), 3);
        assert_eq!(tk.accepted(), 2);
    }

    #[test]
    fn nan_never_wins() {
        let mut tk = TopK::new(2);
        tk.push(0, f32::NAN);
        tk.push(1, 1.0);
        tk.push(2, 2.0);
        let out = tk.into_sorted();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|n| !n.distance.is_nan()));
    }

    #[test]
    fn nan_injection_heap_and_sort_references_agree() {
        // Regression for the unwrap_or(Equal) comparators: with NaN treated
        // as equal-to-everything, a NaN candidate could keep a slot in the
        // sort-based reference that TopK::push would never grant it. Under
        // Neighbor::cmp both references agree exactly, NaNs last.
        let mut candidates: Vec<(u64, f32)> = (0..60)
            .map(|i| (i as u64, ((i * 31) % 47) as f32 * 0.9))
            .collect();
        for slot in [3usize, 17, 29, 44] {
            candidates[slot].1 = f32::NAN;
        }
        let mut tk = TopK::new(8);
        for &(id, d) in &candidates {
            tk.push(id, d);
        }
        let heap_out = tk.into_sorted();
        let sort_out = topk_by_sort(&candidates, 8);
        assert_eq!(heap_out.len(), sort_out.len());
        for (a, b) in heap_out.iter().zip(&sort_out) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
        assert!(heap_out.iter().all(|n| !n.distance.is_nan()));
    }

    #[test]
    fn push_batch_matches_sequential_push() {
        let distances: Vec<f32> = (0..100)
            .map(|i| match i % 13 {
                0 => f32::NAN,
                r => ((i * 29) % 53) as f32 + r as f32 * 0.25,
            })
            .collect();
        for backend in [Backend::Scalar, simd::detect()] {
            let mut sequential = TopK::new(7);
            for (j, &d) in distances.iter().enumerate() {
                sequential.push(1000 + j as u64, d);
            }
            let mut batched = TopK::new(7);
            // Split across uneven batch boundaries to cross fill/full phases
            // and block edges.
            let mut base = 1000u64;
            for chunk in distances.chunks(23) {
                batched.push_batch_with(backend, base, chunk);
                base += chunk.len() as u64;
            }
            assert_eq!(batched.offered(), sequential.offered(), "{backend:?}");
            assert_eq!(batched.accepted(), sequential.accepted(), "{backend:?}");
            let (b, s) = (batched.into_sorted(), sequential.into_sorted());
            assert_eq!(b.len(), s.len());
            for (x, y) in b.iter().zip(&s) {
                assert_eq!(x.id, y.id, "{backend:?}");
                assert_eq!(x.distance.to_bits(), y.distance.to_bits(), "{backend:?}");
            }
        }
    }

    #[test]
    fn push_batch_threshold_tie_breaks_on_id() {
        // A candidate at exactly the threshold can still enter when its id
        // beats the root's — the pre-filter must use `<=`, not `<`.
        let mut tk = TopK::new(1);
        tk.push(50, 2.0);
        let inserted = tk.push_batch(10, &[2.0, 3.0, 2.0, 9.0, 2.0, 4.0, 5.0, 6.0]);
        assert_eq!(inserted, 1);
        let out = tk.into_sorted();
        assert_eq!(out[0].id, 10); // lowest id at distance 2.0 wins
        assert_eq!(out[0].distance, 2.0);
    }

    #[test]
    fn push_batch_recovers_from_nan_root() {
        // If the heap filled with NaN distances, the root is NaN and the
        // vector pre-filter (`d <= NaN` false everywhere) must be bypassed
        // so real candidates can evict it.
        let mut tk = TopK::new(2);
        tk.push(0, f32::NAN);
        tk.push(1, f32::NAN);
        let inserted = tk.push_batch(10, &[5.0, f32::NAN, 1.0, 7.0, 3.0, 8.0, 9.0, 2.0]);
        assert!(inserted >= 2);
        let out = tk.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].distance, 1.0);
        assert_eq!(out[1].distance, 2.0);
    }

    #[test]
    fn fewer_candidates_than_k() {
        let mut tk = TopK::new(10);
        tk.push(7, 3.0);
        let out = tk.into_sorted();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 7);
    }
}
