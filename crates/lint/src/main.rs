//! CLI entry point for `upanns-lint`.
//!
//! ```text
//! upanns-lint --workspace [--json]     lint the enclosing cargo workspace
//! upanns-lint --root DIR [--json]      lint an explicit tree (fixtures, CI)
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
upanns-lint: workspace invariant checker

USAGE:
    upanns-lint --workspace [--json]
    upanns-lint --root <DIR> [--json]

OPTIONS:
    --workspace    lint the enclosing cargo workspace (found by walking up
                   from the current directory to a Cargo.toml with a
                   [workspace] section)
    --root <DIR>   lint the tree rooted at DIR instead
    --json         machine-readable output (schema upanns-lint/v1)
    --help         show this help
";

fn main() -> ExitCode {
    let mut json = false;
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root requires a directory argument"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unrecognised argument `{other}`")),
        }
    }

    let root = match (root, workspace) {
        (Some(dir), _) => dir,
        (None, true) => match find_workspace_root() {
            Some(dir) => dir,
            None => {
                eprintln!("upanns-lint: no enclosing cargo workspace found");
                return ExitCode::from(2);
            }
        },
        (None, false) => return usage_error("pass --workspace or --root <DIR>"),
    };

    match upanns_lint::lint_root(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("upanns-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(why: &str) -> ExitCode {
    eprintln!("upanns-lint: {why}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Walks up from the current directory to the first `Cargo.toml` declaring
/// a `[workspace]` section.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
