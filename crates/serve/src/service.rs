//! The serving front-end: admission → batching → cache → engine, replayed
//! against the simulated clock.
//!
//! [`SearchService`] wraps any [`AnnEngine`] and replays a timed
//! [`QueryStream`]: every arrival is admitted (or shed), checked against the
//! result cache, and batched with compatible queries; formed batches run on
//! the engine back-to-back (the engine is a single serial resource, so a
//! batch dispatched while the engine is busy waits for it). All times are
//! simulated seconds — the engines' own timing models drive the clock, so
//! sustained QPS and latency percentiles are comparable across the CPU, GPU
//! and PIM engines exactly like the batch benchmarks.

use crate::admission::AdmissionQueue;
use crate::batcher::{BatchFormer, BatchFormerConfig, CloseReason, FormedBatch, PendingQuery};
use crate::cache::ResultCache;
use annkit::topk::Neighbor;
use annkit::workload::QueryStream;
use baselines::engine::{AnnEngine, QueryOptions, SearchRequest};

/// Configuration of a [`SearchService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Maximum queries waiting for a batch before arrivals are shed.
    pub queue_capacity: usize,
    /// Close conditions of the dynamic batch former.
    pub batcher: BatchFormerConfig,
    /// Result-cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Simulated seconds to answer a query from the cache.
    pub cache_lookup_s: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 4096,
            batcher: BatchFormerConfig::default(),
            cache_capacity: 1024,
            cache_lookup_s: 2e-6,
        }
    }
}

/// What the replay measured.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// The engine's display name.
    pub engine: String,
    /// Queries answered (engine or cache).
    pub completed: usize,
    /// Queries rejected at admission.
    pub shed: usize,
    /// Cache hits / misses.
    pub cache_hits: u64,
    /// Cache lookups that found nothing.
    pub cache_misses: u64,
    /// Batches executed on the engine, split by close reason.
    pub size_closed_batches: usize,
    /// Batches closed by the waiting deadline.
    pub deadline_closed_batches: usize,
    /// Batches flushed at stream end.
    pub flushed_batches: usize,
    /// Simulated seconds the engine spent executing batches.
    pub engine_busy_s: f64,
    /// Time of the last completion (the replay's makespan).
    pub makespan_s: f64,
    /// Per-query end-to-end latencies in seconds, sorted ascending.
    pub latencies_s: Vec<f64>,
    /// Per-query results in stream order (empty vector for shed queries).
    pub results: Vec<Vec<Neighbor>>,
}

impl ServiceReport {
    /// Completed queries per second of makespan (sustained throughput).
    pub fn sustained_qps(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.makespan_s
        }
    }

    /// The `p`-th latency percentile in seconds (nearest-rank on the sorted
    /// latencies; 0 when nothing completed).
    pub fn percentile(&self, p: f64) -> f64 {
        if self.latencies_s.is_empty() {
            return 0.0;
        }
        let rank = (p.clamp(0.0, 100.0) / 100.0 * (self.latencies_s.len() - 1) as f64).round();
        self.latencies_s[rank as usize]
    }

    /// Median latency in seconds.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Tail latency in seconds.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Mean latency in seconds (0 when nothing completed).
    pub fn mean_latency(&self) -> f64 {
        if self.latencies_s.is_empty() {
            0.0
        } else {
            self.latencies_s.iter().sum::<f64>() / self.latencies_s.len() as f64
        }
    }

    /// Cache hit rate over all lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Total batches the engine executed.
    pub fn batches(&self) -> usize {
        self.size_closed_batches + self.deadline_closed_batches + self.flushed_batches
    }

    /// Mean queries per executed batch (0 without batches).
    pub fn mean_batch_size(&self) -> f64 {
        let batches = self.batches();
        let engine_answered = self.completed as u64 - self.cache_hits;
        if batches == 0 {
            0.0
        } else {
            engine_answered as f64 / batches as f64
        }
    }
}

/// A serving front-end over one engine.
pub struct SearchService<E: AnnEngine> {
    engine: E,
    config: ServiceConfig,
    next_request_id: u64,
}

impl<E: AnnEngine> SearchService<E> {
    /// Wraps `engine` with the given front-end configuration.
    pub fn new(engine: E, config: ServiceConfig) -> Self {
        Self {
            engine,
            config,
            next_request_id: 0,
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The front-end configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Unwraps the service, returning the engine.
    pub fn into_engine(self) -> E {
        self.engine
    }

    /// Replays a timed stream, assigning `options_of(stream_index)` to each
    /// query, and reports sustained QPS, latency percentiles and front-end
    /// counters. The replay is deterministic.
    pub fn replay(
        &mut self,
        stream: &QueryStream,
        mut options_of: impl FnMut(usize) -> QueryOptions,
    ) -> ServiceReport {
        let mut queue = AdmissionQueue::new(self.config.queue_capacity);
        let mut former = BatchFormer::new(self.config.batcher);
        let mut cache = ResultCache::new(self.config.cache_capacity);

        // Admitted queries occupy the waiting room until their batch
        // *finishes* on the engine, so an engine backlog exerts backpressure
        // on admission. Completions are released lazily as the clock passes
        // them: (finish_time, queries) pairs.
        let mut completions: Vec<(f64, usize)> = Vec::new();

        let mut engine_free_at = 0.0f64;
        let mut engine_busy_s = 0.0f64;
        let mut makespan_s = 0.0f64;
        let mut latencies: Vec<f64> = Vec::with_capacity(stream.len());
        let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); stream.len()];
        let mut size_closed = 0usize;
        let mut deadline_closed = 0usize;
        let mut flushed = 0usize;
        let cache_lookup_s = self.config.cache_lookup_s;

        let mut run_batch = |batch: FormedBatch,
                             completions: &mut Vec<(f64, usize)>,
                             cache: &mut ResultCache,
                             engine_free_at: &mut f64,
                             engine_busy_s: &mut f64,
                             makespan_s: &mut f64,
                             latencies: &mut Vec<f64>,
                             results: &mut Vec<Vec<Neighbor>>| {
            match batch.reason {
                CloseReason::Size => size_closed += 1,
                CloseReason::Deadline => deadline_closed += 1,
                CloseReason::Flush => flushed += 1,
            }
            let indices: Vec<usize> = batch.members.iter().map(|m| m.stream_index).collect();
            let options: Vec<QueryOptions> = batch.members.iter().map(|m| m.options).collect();
            let queries = stream.batch.queries.gather(&indices);
            self.next_request_id += 1;
            let request = SearchRequest::new(queries, options).with_id(self.next_request_id);

            let start = batch.closed_at.max(*engine_free_at);
            let response = self.engine.execute(&request);
            let finish = start + response.seconds;
            *engine_free_at = finish;
            *engine_busy_s += response.seconds;
            *makespan_s = makespan_s.max(finish);
            completions.push((finish, batch.len()));

            for (member, neighbors) in batch.members.iter().zip(response.results) {
                latencies.push(finish - member.arrival_s);
                cache.insert(
                    stream.batch.queries.vector(member.stream_index),
                    &member.options,
                    neighbors.clone(),
                    finish,
                );
                results[member.stream_index] = neighbors;
            }
        };

        let mut released_upto = 0usize;
        for (arrival, index) in stream.iter() {
            // Close every batching deadline that fires before this arrival.
            while let Some(deadline) = former.next_deadline() {
                if deadline > arrival {
                    break;
                }
                for batch in former.due(deadline) {
                    run_batch(
                        batch,
                        &mut completions,
                        &mut cache,
                        &mut engine_free_at,
                        &mut engine_busy_s,
                        &mut makespan_s,
                        &mut latencies,
                        &mut results,
                    );
                }
            }

            // Free the waiting room of every batch finished by now (the
            // engine is serial, so finish times are non-decreasing).
            while released_upto < completions.len() && completions[released_upto].0 <= arrival {
                queue.release(completions[released_upto].1);
                released_upto += 1;
            }

            let options = options_of(index);
            if let Some((cached, ready_at)) =
                cache.lookup(stream.batch.queries.vector(index), &options)
            {
                // A repeat arriving before the original answer is ready waits
                // for it; afterwards the hit costs only the lookup.
                let finish = arrival.max(ready_at) + cache_lookup_s;
                latencies.push(finish - arrival);
                makespan_s = makespan_s.max(finish);
                results[index] = cached;
                continue;
            }
            if !queue.try_admit() {
                continue; // shed at the door
            }
            let pending = PendingQuery {
                arrival_s: arrival,
                stream_index: index,
                options,
            };
            if let Some(batch) = former.push(pending, arrival) {
                run_batch(
                    batch,
                    &mut completions,
                    &mut cache,
                    &mut engine_free_at,
                    &mut engine_busy_s,
                    &mut makespan_s,
                    &mut latencies,
                    &mut results,
                );
            }
        }

        // Stream over: no more arrivals can join any open group, so flush
        // everything immediately instead of waiting out the deadlines.
        for batch in former.flush(stream.duration()) {
            run_batch(
                batch,
                &mut completions,
                &mut cache,
                &mut engine_free_at,
                &mut engine_busy_s,
                &mut makespan_s,
                &mut latencies,
                &mut results,
            );
        }

        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        ServiceReport {
            engine: self.engine.name().to_string(),
            completed: latencies.len(),
            shed: queue.shed() as usize,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            size_closed_batches: size_closed,
            deadline_closed_batches: deadline_closed,
            flushed_batches: flushed,
            engine_busy_s,
            makespan_s,
            latencies_s: latencies,
            results,
        }
    }

    /// [`replay`](Self::replay) with one shared [`QueryOptions`] for the
    /// whole stream.
    pub fn replay_uniform(&mut self, stream: &QueryStream, options: QueryOptions) -> ServiceReport {
        self.replay(stream, |_| options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annkit::ivf::{IvfPqIndex, IvfPqParams};
    use annkit::synthetic::{SyntheticDataset, SyntheticSpec};
    use annkit::workload::StreamSpec;
    use baselines::cpu::CpuFaissEngine;
    use std::sync::OnceLock;

    fn fixture() -> &'static (SyntheticDataset, IvfPqIndex) {
        static FIX: OnceLock<(SyntheticDataset, IvfPqIndex)> = OnceLock::new();
        FIX.get_or_init(|| {
            let dataset = SyntheticSpec::sift_like(1500)
                .with_clusters(12)
                .with_seed(31)
                .generate_with_meta();
            let index = IvfPqIndex::train(
                &dataset.vectors,
                &IvfPqParams::new(12, 16).with_train_size(600),
                3,
            );
            (dataset, index)
        })
    }

    fn stream(n: usize, qps: f64, repeats: f64) -> QueryStream {
        let (dataset, _) = fixture();
        StreamSpec::new(n, qps)
            .with_repeat_fraction(repeats)
            .generate(dataset)
    }

    #[test]
    fn replay_answers_every_query_or_sheds_it() {
        let (_, index) = fixture();
        let mut service =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default());
        let stream = stream(200, 50_000.0, 0.0);
        let report = service.replay_uniform(&stream, QueryOptions::new(10, 4));
        assert_eq!(report.completed + report.shed, 200);
        assert_eq!(report.latencies_s.len(), report.completed);
        assert!(report.batches() > 0);
        assert!(report.sustained_qps() > 0.0);
        assert!(report.makespan_s >= stream.duration() * 0.5);
        assert!(report.engine_busy_s > 0.0);
        // Latencies are sorted, so the percentiles are monotone.
        assert!(report.p50() <= report.p99());
        assert!(report.percentile(0.0) <= report.p50());
    }

    #[test]
    fn replay_results_match_direct_execution() {
        let (_, index) = fixture();
        let mut service = SearchService::new(
            CpuFaissEngine::new(index),
            ServiceConfig {
                queue_capacity: 10_000,
                ..ServiceConfig::default()
            },
        );
        let stream = stream(60, 20_000.0, 0.0);
        let report = service.replay_uniform(&stream, QueryOptions::new(5, 6));
        assert_eq!(report.shed, 0);
        let mut engine = CpuFaissEngine::new(index);
        let direct = engine.search_batch(&stream.batch.queries, 6, 5);
        for (served, expected) in report.results.iter().zip(&direct.results) {
            assert_eq!(
                served.iter().map(|n| n.id).collect::<Vec<_>>(),
                expected.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let (_, index) = fixture();
        let mut service =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default());
        let stream = stream(300, 50_000.0, 0.4);
        let report = service.replay_uniform(&stream, QueryOptions::new(10, 4));
        assert!(report.cache_hits > 0, "repeats must hit the cache");
        assert!(report.cache_hit_rate() > 0.05);
        // A cached answer equals the originally computed answer.
        assert_eq!(report.completed + report.shed, 300);
    }

    #[test]
    fn tiny_queue_sheds_under_overload() {
        let (_, index) = fixture();
        let config = ServiceConfig {
            queue_capacity: 4,
            batcher: BatchFormerConfig {
                max_batch: 64,
                max_delay_s: 10.0, // deadlines never fire mid-stream
            },
            cache_capacity: 0,
            cache_lookup_s: 0.0,
        };
        let mut service = SearchService::new(CpuFaissEngine::new(index), config);
        let stream = stream(100, 1.0e9, 0.0); // everything arrives at once
        let report = service.replay_uniform(&stream, QueryOptions::new(10, 4));
        assert!(report.shed > 0, "overload must shed");
        assert!(report.completed >= 4, "admitted queries still complete");
    }

    #[test]
    fn mixed_options_are_batched_separately_but_all_answered() {
        let (_, index) = fixture();
        let mut service =
            SearchService::new(CpuFaissEngine::new(index), ServiceConfig::default());
        let stream = stream(120, 30_000.0, 0.0);
        let report = service.replay(&stream, |i| {
            if i % 2 == 0 {
                QueryOptions::new(5, 4)
            } else {
                QueryOptions::new(20, 8)
            }
        });
        assert_eq!(report.completed + report.shed, 120);
        for (i, r) in report.results.iter().enumerate() {
            if r.is_empty() {
                continue; // shed
            }
            assert_eq!(r.len(), if i % 2 == 0 { 5 } else { 20 });
        }
    }
}
