//! The online phase: the `UpAnnsEngine`, answering query batches on the
//! simulated PIM system.
//!
//! Per batch (Figure 5's online half):
//!
//! 1. **Cluster filtering** (host CPU) — select `nprobe` centroids per query.
//! 2. **Query scheduling** (host CPU, Algorithm 2) — map every
//!    (query, cluster) pair onto a DPU holding a replica.
//! 3. **Query transfer** (host → DPU) — residuals + assignment headers,
//!    padded to a uniform per-DPU size so the copy parallelizes across DPUs.
//! 4. **DPU kernel** — LUT construction, combination sums, distance
//!    calculation, pruned top-k (see [`crate::kernel`]).
//! 5. **Result transfer** (DPU → host) — per-DPU result mailboxes.
//! 6. **Host merge** — fold per-DPU partial top-k lists into the final
//!    answer per query.
//!
//! The engine serves a [`SnapshotTimeline`] rather than a frozen index: each
//! installed snapshot gets its own epoch state — placement, combo tables
//! and staged MRAM derived from that snapshot by re-running the offline
//! phase — and every request runs against the state active at its
//! batch-close time. A freshly built engine holds a single frozen entry, so
//! the unmutated path is bitwise identical to the pre-mutation design.
//!
//! The engine implements [`AnnEngine`], so the benchmark harness sweeps it
//! interchangeably with the CPU/GPU baselines.

use crate::builder::{build_epoch_state, BuildRecipe};
use crate::cooccurrence::ComboTable;
use crate::kernel::{
    mailbox_slot_bytes, parse_mailbox, run_batch_kernel, DpuBatchPlan, DpuStore, KernelOutput,
    KernelShared,
};
use crate::placement::Placement;
use crate::scheduling::{schedule_queries, Assignment, Schedule};
use annkit::mutation::{IndexSnapshot, SnapshotTimeline};
use annkit::topk::{Neighbor, TopK};
use annkit::vector::{residual, Dataset};
use baselines::cpu::CpuSpec;
use baselines::engine::{execute_by_entry, execute_grouped, AnnEngine, SearchRequest, SearchResponse};
use baselines::workload_stats::WorkloadStats;
use pim_sim::energy::EnergyModel;
use pim_sim::host::{DpuRead, DpuWrite, ExecReport, PimSystem};
use std::collections::HashMap;

/// Everything the six-stage pipeline needs to serve one installed snapshot:
/// the snapshot itself plus the offline artifacts (placement, combo tables,
/// reduction rates, staged MRAM and the simulated system) derived from it.
pub(crate) struct EpochState {
    pub(crate) snapshot: IndexSnapshot,
    pub(crate) placement: Placement,
    pub(crate) combos: HashMap<usize, ComboTable>,
    pub(crate) reduction_rates: HashMap<usize, f64>,
    pub(crate) stores: Vec<DpuStore>,
    pub(crate) sys: PimSystem,
}

/// Ensures DPU `dpu`'s staging buffers can hold `query_bytes` /
/// `mailbox_bytes`, growing them (new MRAM allocations) if needed.
fn ensure_capacity(
    sys: &mut PimSystem,
    stores: &mut [DpuStore],
    dpu: usize,
    query_bytes: usize,
    mailbox_bytes: usize,
) {
    if stores[dpu].query_buffer_bytes < query_bytes {
        let addr = sys
            .mram_alloc(dpu, query_bytes)
            .expect("MRAM for enlarged query buffer");
        stores[dpu].query_buffer_addr = addr;
        stores[dpu].query_buffer_bytes = query_bytes;
    }
    if stores[dpu].mailbox_bytes < mailbox_bytes {
        let addr = sys
            .mram_alloc(dpu, mailbox_bytes)
            .expect("MRAM for enlarged mailbox");
        stores[dpu].mailbox_addr = addr;
        stores[dpu].mailbox_bytes = mailbox_bytes;
    }
}

fn host_filter_seconds(host: &CpuSpec, queries: usize, nlist: usize, dim: usize) -> f64 {
    let flops = queries as f64 * nlist as f64 * dim as f64 * 2.0;
    flops / host.compute_flops()
}

fn host_schedule_seconds(host: &CpuSpec, assignments: usize, dim: usize) -> f64 {
    // Algorithm 2 is O(|Q| × nprobe) with small constants, plus the
    // residual computation for each assignment.
    let cycles = assignments as f64 * 60.0 + assignments as f64 * dim as f64;
    cycles / host.freq_hz
}

fn host_merge_seconds(host: &CpuSpec, partials: usize, k: usize) -> f64 {
    let cycles = partials as f64 * k as f64 * 12.0;
    cycles / host.freq_hz
}

/// The UpANNS search engine (also the PIM-naive baseline, depending on the
/// [`UpAnnsConfig`](crate::config::UpAnnsConfig) it was built with).
pub struct UpAnnsEngine {
    timeline: SnapshotTimeline,
    /// One derived state per timeline entry (parallel to
    /// `timeline.entries()`).
    epochs: Vec<EpochState>,
    /// The offline-phase inputs, kept so `install_timeline` can re-run the
    /// build for every installed snapshot.
    recipe: BuildRecipe,
    host_cpu: CpuSpec,
    name: String,
    last_exec_report: Option<ExecReport>,
    last_schedule_ratio: f64,
}

impl UpAnnsEngine {
    /// Assembles an engine from the builder's outputs (use
    /// [`UpAnnsBuilder`](crate::builder::UpAnnsBuilder) rather than calling
    /// this directly).
    pub(crate) fn from_build(recipe: BuildRecipe, state: EpochState) -> Self {
        let config = &recipe.config;
        let name = if config.pim_aware_placement
            && config.cooccurrence_encoding
            && config.topk_pruning
        {
            "UpANNS".to_string()
        } else if !config.pim_aware_placement
            && !config.cooccurrence_encoding
            && !config.topk_pruning
        {
            "PIM-naive".to_string()
        } else {
            "UpANNS(partial)".to_string()
        };
        Self {
            timeline: SnapshotTimeline::new(state.snapshot.clone()),
            epochs: vec![state],
            recipe,
            host_cpu: CpuSpec::default(),
            name,
            last_exec_report: None,
            last_schedule_ratio: 1.0,
        }
    }

    /// Overrides the display name (used by ablation sweeps).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The engine configuration.
    pub fn config(&self) -> &crate::config::UpAnnsConfig {
        &self.recipe.config
    }

    /// The snapshot timeline currently being served.
    pub fn timeline(&self) -> &SnapshotTimeline {
        &self.timeline
    }

    /// The state of the most recently activated epoch (a fresh engine has
    /// exactly one).
    fn current(&self) -> &EpochState {
        self.epochs.last().expect("an engine always has one epoch")
    }

    /// The offline data placement (of the most recently activated epoch).
    pub fn placement(&self) -> &Placement {
        &self.current().placement
    }

    /// The per-DPU MRAM directories (exposed for tests and diagnostics).
    pub fn stores(&self) -> &[DpuStore] {
        &self.current().stores
    }

    /// The simulated PIM system (for energy and configuration queries).
    pub fn pim_system(&self) -> &PimSystem {
        &self.current().sys
    }

    /// Mean co-occurrence length-reduction rate across encoded clusters
    /// (0 when CAE is disabled) — the x-axis quantity of Figure 14.
    pub fn mean_reduction_rate(&self) -> f64 {
        let rates = &self.current().reduction_rates;
        if rates.is_empty() {
            return 0.0;
        }
        rates.values().sum::<f64>() / rates.len() as f64
    }

    /// Per-cluster reduction rates (clusters without CAE encoding are absent).
    pub fn reduction_rates(&self) -> &HashMap<usize, f64> {
        &self.current().reduction_rates
    }

    /// The max/avg DPU busy-time ratio of the most recent batch (Figure 11's
    /// metric; 1.0 = perfectly balanced).
    pub fn last_balance_ratio(&self) -> f64 {
        self.last_exec_report
            .as_ref()
            .map(|r| r.max_to_avg_ratio())
            .unwrap_or(1.0)
    }

    /// The max/avg *scheduled workload* ratio of the most recent batch (the
    /// static estimate used by Algorithm 2).
    pub fn last_schedule_ratio(&self) -> f64 {
        self.last_schedule_ratio
    }

    /// Kernel-side execution report of the most recent batch.
    pub fn last_exec_report(&self) -> Option<&ExecReport> {
        self.last_exec_report.as_ref()
    }

    /// One uniform sub-batch through the full six-stage PIM pipeline, against
    /// the epoch state at index `epoch`.
    fn run_uniform(
        &mut self,
        epoch: usize,
        queries: &Dataset,
        nprobe: usize,
        k: usize,
    ) -> SearchResponse {
        let Self {
            epochs,
            recipe,
            host_cpu,
            last_exec_report,
            last_schedule_ratio,
            ..
        } = self;
        let EpochState {
            snapshot,
            placement,
            combos,
            stores,
            sys,
            ..
        } = &mut epochs[epoch];
        let config = &recipe.config;
        assert_eq!(queries.dim(), snapshot.dim(), "query dimension mismatch");
        assert!(k > 0, "k must be positive");
        let nprobe = nprobe.min(snapshot.nlist()).max(1);
        let nq = queries.len();
        sys.reset_clock();

        // ---- Stage 1: cluster filtering (host CPU) ------------------------
        let filtered: Vec<Vec<usize>> = queries
            .iter()
            .map(|q| {
                snapshot
                    .filter_clusters(q, nprobe)
                    .into_iter()
                    .map(|(c, _)| c)
                    .collect()
            })
            .collect();
        let filter_seconds = host_filter_seconds(host_cpu, nq, snapshot.nlist(), snapshot.dim());
        sys.advance_host("cluster_filtering", filter_seconds);

        // ---- Stage 2: query scheduling (host CPU, Algorithm 2) ------------
        // The snapshot's cached size slice keeps this per-batch step
        // allocation-free.
        let cluster_sizes = snapshot.list_sizes();
        let schedule: Schedule = schedule_queries(&filtered, placement, cluster_sizes);
        *last_schedule_ratio = schedule.max_to_avg_workload();
        let total_assignments = schedule.total_assignments();
        let schedule_seconds = host_schedule_seconds(host_cpu, total_assignments, snapshot.dim());
        sys.advance_host("query_scheduling", schedule_seconds);

        // ---- Stage 3: query transfer (host → DPU, uniform padded buffers) -
        let dim = snapshot.dim();
        let record_bytes = 8 + dim * 4; // (query id, cluster id) header + residual
        let max_assignments = schedule.max_assignments_per_dpu().max(1);
        let uniform_query_bytes = max_assignments * record_bytes;
        let mut plans: Vec<DpuBatchPlan> = vec![DpuBatchPlan::default(); sys.num_dpus()];
        let mut writes = Vec::new();
        for (dpu, plan_slot) in plans.iter_mut().enumerate() {
            let assignments = &schedule.per_dpu[dpu];
            if assignments.is_empty() {
                continue;
            }
            let mailbox_needed =
                assignments.len().min(nq) * mailbox_slot_bytes(k).max(mailbox_slot_bytes(1));
            ensure_capacity(sys, stores, dpu, uniform_query_bytes, mailbox_needed);

            let mut buffer = Vec::with_capacity(uniform_query_bytes);
            let mut plan = DpuBatchPlan::default();
            let mut seen_queries = Vec::new();
            for a in assignments {
                let q = queries.vector(a.query);
                let res = residual(q, snapshot.coarse().centroid(a.cluster));
                buffer.extend_from_slice(&(a.query as u32).to_le_bytes());
                buffer.extend_from_slice(&(a.cluster as u32).to_le_bytes());
                for &x in &res {
                    buffer.extend_from_slice(&x.to_le_bytes());
                }
                plan.assignments.push(Assignment {
                    query: a.query,
                    cluster: a.cluster,
                });
                plan.residuals.push(res);
                if !seen_queries.contains(&a.query) {
                    seen_queries.push(a.query);
                }
            }
            buffer.resize(uniform_query_bytes, 0); // pad to the uniform size
            writes.push(DpuWrite::new(dpu, stores[dpu].query_buffer_addr, buffer));
            plan.queries = seen_queries;
            *plan_slot = plan;
        }
        sys.push_to_dpus("query_transfer", &writes)
            .expect("query staging buffers are sized by ensure_capacity");

        // ---- Stage 4: DPU kernel -------------------------------------------
        let stores_ref: &[DpuStore] = stores;
        let shared = KernelShared {
            pq: snapshot.pq(),
            combos,
            config,
            k,
            scan_backend: annkit::simd::active(),
        };
        let mut outputs: Vec<KernelOutput> = vec![KernelOutput::default(); sys.num_dpus()];
        let report = sys.execute("dpu_search", |ctx| {
            let dpu = ctx.dpu_id();
            if plans[dpu].is_empty() {
                return;
            }
            outputs[dpu] = run_batch_kernel(ctx, &stores_ref[dpu], &plans[dpu], &shared);
        });

        // ---- Stage 5: result transfer (DPU → host) -------------------------
        let max_queries_per_dpu = plans.iter().map(|p| p.queries.len()).max().unwrap_or(0);
        let uniform_mailbox = max_queries_per_dpu * mailbox_slot_bytes(k);
        let reads: Vec<DpuRead> = (0..sys.num_dpus())
            .filter(|&d| !plans[d].is_empty() && uniform_mailbox > 0)
            .map(|d| {
                DpuRead::new(
                    d,
                    stores_ref[d].mailbox_addr,
                    uniform_mailbox.min(stores_ref[d].mailbox_bytes),
                )
            })
            .collect();
        let mailboxes = sys
            .pull_from_dpus("result_transfer", &reads)
            .expect("mailboxes were allocated by the builder");

        // ---- Stage 6: host merge -------------------------------------------
        let mut merged: Vec<TopK> = (0..nq).map(|_| TopK::new(k)).collect();
        let mut partial_count = 0usize;
        for (read, bytes) in reads.iter().zip(&mailboxes) {
            let dpu = read.dpu;
            let partials = parse_mailbox(bytes, plans[dpu].queries.len(), k);
            for (q, neighbors) in partials {
                partial_count += 1;
                for n in neighbors {
                    merged[q].push(n.id, n.distance);
                }
            }
        }
        let merge_seconds = host_merge_seconds(host_cpu, partial_count, k);
        sys.advance_host("host_merge", merge_seconds);

        let results: Vec<Vec<Neighbor>> = merged.into_iter().map(|h| h.into_sorted()).collect();

        // ---- Assemble the outcome ------------------------------------------
        let mut stats = WorkloadStats {
            queries: nq,
            k,
            nprobe,
            centroid_comparisons: (nq * snapshot.nlist()) as u64,
            luts_built: total_assignments as u64,
            lut_entries: (total_assignments * snapshot.m() * 256) as u64,
            ..WorkloadStats::default()
        };
        for o in &outputs {
            stats.candidates_scanned += o.candidates_scanned;
            stats.lut_lookups += o.lut_lookups;
            stats.code_bytes_read += o.code_bytes_read;
            stats.topk_candidates += o.merge_stats.comparisons + o.merge_stats.pruned;
            stats.topk_insertions += o.merge_stats.insertions;
        }

        let mut breakdown = sys.breakdown().clone();
        // Fold the kernel-internal stage labels of the critical DPU into the
        // top-level breakdown in place of the opaque "dpu_search" total.
        let dpu_total = breakdown.seconds("dpu_search");
        if dpu_total > 0.0 {
            let mut detailed = pim_sim::stats::StageBreakdown::new();
            for (label, secs) in breakdown.entries() {
                if label != "dpu_search" {
                    detailed.add(&label, secs);
                }
            }
            let kernel_breakdown = &report.breakdown;
            let kernel_total = kernel_breakdown.total().max(f64::MIN_POSITIVE);
            for (label, secs) in kernel_breakdown.entries() {
                detailed.add(&label, secs / kernel_total * dpu_total);
            }
            breakdown = detailed;
        }
        *last_exec_report = Some(report);
        let seconds = sys.elapsed_seconds();

        SearchResponse {
            request_id: 0,
            results,
            seconds,
            breakdown,
            stats,
        }
    }
}

impl AnnEngine for UpAnnsEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(&mut self, request: &SearchRequest) -> SearchResponse {
        let timeline = self.timeline.clone();
        execute_by_entry(&timeline, request, |epoch, sub| {
            execute_grouped(sub, |queries, nprobe, k| {
                self.run_uniform(epoch, queries, nprobe, k)
            })
        })
    }

    fn energy_model(&self) -> EnergyModel {
        EnergyModel::pim(self.current().sys.config())
    }

    fn install_timeline(&mut self, timeline: SnapshotTimeline) -> bool {
        self.epochs = timeline
            .entries()
            .iter()
            .map(|(_, snapshot)| build_epoch_state(snapshot.clone(), &self.recipe, None))
            .collect();
        self.timeline = timeline;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BatchCapacity, UpAnnsBuilder};
    use crate::config::UpAnnsConfig;
    use annkit::ivf::{IvfPqIndex, IvfPqParams};
    use annkit::recall::recall_at_k;
    use annkit::synthetic::SyntheticSpec;
    use baselines::cpu::CpuFaissEngine;
    use pim_sim::config::PimConfig;
    use std::sync::OnceLock;

    /// Compile-time Send audit: the threaded runtime (`upanns-runtime`)
    /// moves each engine worker into its own thread. The engine's mutable
    /// state (DPU stores, combo tables, the last exec report) is owned, and
    /// the snapshot shares the index via `Arc`, so `Send` holds
    /// structurally; this pins it against future `Rc`/`RefCell` fields.
    #[test]
    fn upanns_engine_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<UpAnnsEngine>();
    }

    struct Fixture {
        index: IvfPqIndex,
        data: Dataset,
        /// Skewed historical queries (for placement frequencies).
        history: Dataset,
        /// Skewed evaluation queries (the regime Opt1 targets).
        skewed_queries: Dataset,
    }

    fn shared_index() -> &'static Fixture {
        static IX: OnceLock<Fixture> = OnceLock::new();
        IX.get_or_init(|| {
            let meta = SyntheticSpec::sift_like(2000)
                .with_clusters(16)
                .with_seed(44)
                .generate_with_meta();
            let index = IvfPqIndex::train(
                &meta.vectors,
                &IvfPqParams::new(16, 16).with_train_size(800),
                6,
            );
            let history = annkit::workload::WorkloadSpec::new(200)
                .with_seed(5)
                .generate(&meta)
                .queries;
            let skewed_queries = annkit::workload::WorkloadSpec::new(40)
                .with_seed(6)
                .generate(&meta)
                .queries;
            Fixture {
                index,
                data: meta.vectors,
                history,
                skewed_queries,
            }
        })
    }

    fn build(config: UpAnnsConfig, dpus: usize) -> UpAnnsEngine {
        let fix = shared_index();
        UpAnnsBuilder::new(&fix.index)
            .with_config(config)
            .with_pim_config(PimConfig::with_dpus(dpus))
            .with_history(&fix.history, 4)
            .with_batch_capacity(BatchCapacity {
                batch_size: 32,
                nprobe: 4,
                max_k: 10,
            })
            .build()
    }

    #[test]
    fn results_match_the_cpu_baseline_exactly_for_plain_encoding() {
        let fix = shared_index();
        let mut pim = build(UpAnnsConfig::pim_naive(), 8);
        let mut cpu = CpuFaissEngine::new(&fix.index);
        let queries = fix.data.gather(&[1, 50, 333, 999, 1500]);
        let a = pim.search_batch(&queries, 4, 10);
        let b = cpu.search_batch(&queries, 4, 10);
        assert_eq!(a.results.len(), b.results.len());
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(
                x.iter().map(|n| n.id).collect::<Vec<_>>(),
                y.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
        assert_eq!(pim.name(), "PIM-naive");
    }

    #[test]
    fn upanns_accuracy_equals_pim_naive_accuracy() {
        // "The optimizations in UpANNS do not impact the accuracy" (§5.1).
        let fix = shared_index();
        let mut upanns = build(UpAnnsConfig::upanns(), 8);
        let mut naive = build(UpAnnsConfig::pim_naive(), 8);
        let queries = fix.data.gather(&(0..30).map(|i| i * 61 % 2000).collect::<Vec<_>>());
        let exact = annkit::flat::FlatIndex::new(&fix.data).search_batch(&queries, 10);
        let r_up = recall_at_k(&upanns.search_batch(&queries, 6, 10).results, &exact, 10);
        let r_naive = recall_at_k(&naive.search_batch(&queries, 6, 10).results, &exact, 10);
        assert!(
            (r_up - r_naive).abs() < 0.05,
            "UpANNS recall {r_up} vs PIM-naive {r_naive}"
        );
        assert_eq!(upanns.name(), "UpANNS");
    }

    #[test]
    fn upanns_is_faster_and_better_balanced_than_pim_naive() {
        let fix = shared_index();
        let queries = fix.skewed_queries.clone();
        let mut upanns = build(UpAnnsConfig::upanns().with_work_scale(200.0), 8);
        let mut naive = build(UpAnnsConfig::pim_naive().with_work_scale(200.0), 8);
        let out_up = upanns.search_batch(&queries, 6, 10);
        let out_naive = naive.search_batch(&queries, 6, 10);
        assert!(
            out_up.qps() > out_naive.qps(),
            "UpANNS {} <= PIM-naive {}",
            out_up.qps(),
            out_naive.qps()
        );
        assert!(
            upanns.last_balance_ratio() <= naive.last_balance_ratio() + 1e-9,
            "balance {} vs {}",
            upanns.last_balance_ratio(),
            naive.last_balance_ratio()
        );
    }

    #[test]
    fn breakdown_contains_all_pipeline_stages() {
        let fix = shared_index();
        let mut engine = build(UpAnnsConfig::upanns(), 8);
        let queries = fix.data.gather(&[0, 10, 20]);
        let out = engine.search_batch(&queries, 4, 10);
        for stage in [
            "cluster_filtering",
            "query_scheduling",
            "query_transfer",
            "distance_calc",
            "lut_construction",
            "topk",
            "result_transfer",
            "host_merge",
        ] {
            assert!(
                out.breakdown.seconds(stage) > 0.0,
                "missing stage {stage} in breakdown: {}",
                out.breakdown
            );
        }
        assert!(out.seconds > 0.0);
        assert!(out.qps() > 0.0);
        assert!(engine.energy_model().peak_watts > 0.0);
    }

    #[test]
    fn repeated_batches_reuse_buffers_and_stay_consistent() {
        let fix = shared_index();
        let mut engine = build(UpAnnsConfig::upanns(), 4);
        let queries = fix.data.gather(&(0..20).collect::<Vec<_>>());
        let first = engine.search_batch(&queries, 4, 5);
        let second = engine.search_batch(&queries, 4, 5);
        assert_eq!(first.results.len(), second.results.len());
        for (a, b) in first.results.iter().zip(&second.results) {
            assert_eq!(
                a.iter().map(|n| n.id).collect::<Vec<_>>(),
                b.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
        // Timing is deterministic as well.
        assert!((first.seconds - second.seconds).abs() / first.seconds < 1e-9);
    }

    #[test]
    fn larger_k_returns_more_neighbors() {
        let fix = shared_index();
        let mut engine = build(UpAnnsConfig::upanns(), 4);
        let queries = fix.data.gather(&[5, 15]);
        let small = engine.search_batch(&queries, 4, 5);
        let large = engine.search_batch(&queries, 4, 50);
        assert!(small.results.iter().all(|r| r.len() <= 5));
        assert!(large.results.iter().all(|r| r.len() > 5));
        // The top-5 of the k=50 run must match the k=5 run.
        for (a, b) in small.results.iter().zip(&large.results) {
            assert_eq!(
                a.iter().map(|n| n.id).collect::<Vec<_>>(),
                b.iter().take(5).map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn installed_timeline_serves_per_epoch_answers_and_stalls() {
        use annkit::mutation::{MutableIvf, SnapshotTimeline};
        let fix = shared_index();
        let mut engine = build(UpAnnsConfig::upanns(), 8);
        let queries = fix.data.gather(&[3, 77, 1234]);

        // Baseline answers on the frozen single-entry timeline.
        let frozen = engine.execute(&SearchRequest::uniform(&queries, 4, 10));

        // Upsert a duplicate of query 3's vector under a fresh id and
        // install the mutated snapshot at t = 10.
        let mut live = MutableIvf::new(&fix.index);
        let mut timeline = SnapshotTimeline::new(live.snapshot());
        live.upsert(fix.data.vector(3), 90_000);
        timeline.install(10.0, live.snapshot());
        timeline.push_window(20.0, 21.5);
        assert!(engine.install_timeline(timeline));

        // Before activation the engine still serves the frozen answers.
        let early = engine.execute(&SearchRequest::uniform(&queries, 4, 10).with_at(5.0));
        for (a, b) in frozen.results.iter().zip(&early.results) {
            assert_eq!(
                a.iter().map(|n| n.id).collect::<Vec<_>>(),
                b.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }

        // After activation the new id is visible.
        let late = engine.execute(&SearchRequest::uniform(&queries, 4, 10).with_at(12.0));
        assert!(late.results[0].iter().any(|n| n.id == 90_000));

        // A request inside the compaction window pays the stall.
        let stalled = engine.execute(&SearchRequest::uniform(&queries, 4, 10).with_at(20.5));
        assert!(stalled.breakdown.seconds("compaction_stall") > 0.9);
        assert!(stalled.seconds > late.seconds);
    }
}
