//! A comment- and string-aware Rust lexer.
//!
//! The workspace has no registry access, so `syn` is unavailable; the lint
//! rules instead run over this hand-rolled token stream. It is deliberately
//! *not* a full Rust lexer — it only needs to be faithful about the things
//! that make naive `grep`-style linting lie:
//!
//! * comments (line, block — nested — and all doc forms) never produce code
//!   tokens, so a rule name mentioned in documentation is not a violation;
//! * string literals (plain, raw with any hash count, byte, C) and char
//!   literals are swallowed into a single [`TokenKind::Literal`] token whose
//!   text rules never match against;
//! * lifetimes (`'a`) are distinguished from char literals so a quote does
//!   not swallow the rest of the file;
//! * `::` is fused into one punctuation token, which is what lets the rules
//!   do lightweight path tracking.
//!
//! Every token and comment carries its 1-based source line for diagnostics
//! and for directive placement ([`crate::directives`]).

/// What kind of token a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`self`, `HashMap`, `for`, ...).
    Ident,
    /// A punctuation token: one character, except the fused `::`.
    Punct,
    /// A numeric, string, char or byte literal. Rules treat literals as
    /// opaque — their text is never matched against banned names.
    Literal,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token kind.
    pub kind: TokenKind,
    /// The token text (`::` for the fused path separator; literal tokens
    /// keep their raw text purely for debugging).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == p
    }
}

/// One comment, kept out of the token stream but retained for directive
/// parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// The comment text *without* its `//`/`/*` framing (block comments
    /// keep interior newlines).
    pub text: String,
    /// Whether the comment is a doc comment (`///`, `//!`, `/** */`,
    /// `/*! */`). Directives are only honoured in plain comments, so
    /// documentation can safely *show* directives without asserting them.
    pub doc: bool,
    /// Whether any code token precedes the comment on its starting line
    /// (a trailing comment annotates its own line; a standalone one
    /// annotates the next code line).
    pub trailing: bool,
}

/// A lexed source file: code tokens plus the comments that were stripped.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// The code tokens in source order.
    pub tokens: Vec<Token>,
    /// The stripped comments in source order.
    pub comments: Vec<Comment>,
}

impl LexedFile {
    /// The first code line strictly after `line`, if any — where a
    /// standalone comment's directive lands.
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        self.tokens.iter().map(|t| t.line).find(|&l| l > line)
    }
}

/// Lexes `source` into code tokens and comments. Never fails: unterminated
/// constructs simply consume the rest of the file, which is the safe
/// direction for a linter (nothing after a lexing confusion is reported).
pub fn lex(source: &str) -> LexedFile {
    Lexer::new(source).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    code_on_line: bool,
    out: LexedFile,
}

impl Lexer {
    fn new(source: &str) -> Self {
        Self {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            code_on_line: false,
            out: LexedFile::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.code_on_line = false;
            }
        }
        c
    }

    fn push_token(&mut self, kind: TokenKind, text: String, line: u32) {
        self.code_on_line = true;
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> LexedFile {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed_literal(),
                c if c.is_ascii_digit() => self.number(),
                '"' => self.string(0),
                '\'' => self.char_or_lifetime(),
                ':' if self.peek(1) == Some(':') => {
                    let line = self.line;
                    self.bump();
                    self.bump();
                    self.push_token(TokenKind::Punct, "::".to_string(), line);
                }
                _ => {
                    let line = self.line;
                    let c = self.bump().unwrap_or(' ');
                    self.push_token(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let trailing = self.code_on_line;
        self.bump(); // /
        self.bump(); // /
        // `///` and `//!` are doc comments; `////...` is a plain comment.
        let doc = matches!(self.peek(0), Some('!'))
            || (self.peek(0) == Some('/') && self.peek(1) != Some('/'));
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            text,
            doc,
            trailing,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let trailing = self.code_on_line;
        self.bump(); // /
        self.bump(); // *
        let doc = matches!(self.peek(0), Some('!'))
            || (self.peek(0) == Some('*') && self.peek(1) != Some('*') && self.peek(1) != Some('/'));
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            line,
            text,
            doc,
            trailing,
        });
    }

    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // String-literal prefixes: b"", r"", br"", c"", cr"", r#""#, ...
        let is_prefix = matches!(text.as_str(), "b" | "r" | "br" | "rb" | "c" | "cr");
        if is_prefix {
            if self.peek(0) == Some('"') {
                self.raw_or_plain_string(&text, 0, line);
                return;
            }
            if self.peek(0) == Some('#') {
                let mut hashes = 0usize;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.raw_or_plain_string(&text, hashes, line);
                    return;
                }
            }
        }
        self.push_token(TokenKind::Ident, text, line);
    }

    fn raw_or_plain_string(&mut self, prefix: &str, hashes: usize, line: u32) {
        if prefix.contains('r') || hashes > 0 {
            self.raw_string(hashes, line);
        } else {
            self.string(0);
            // Re-tag the just-pushed literal's line: the prefix started it.
            if let Some(t) = self.out.tokens.last_mut() {
                t.line = line;
            }
        }
    }

    /// A plain (escaped) string literal. `hashes` is unused for plain
    /// strings but keeps the two entry points symmetric.
    fn string(&mut self, _hashes: usize) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push_token(TokenKind::Literal, String::from("\"…\""), line);
    }

    /// A raw string literal: terminated by `"` followed by `hashes` hashes.
    fn raw_string(&mut self, hashes: usize, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut seen = 0usize;
                while seen < hashes && self.peek(0) == Some('#') {
                    self.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
            }
        }
        self.push_token(TokenKind::Literal, String::from("r\"…\""), line);
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let next = self.peek(1);
        let after = self.peek(2);
        let is_char = match next {
            Some('\\') => true,
            Some(c) if c == '_' || c.is_alphanumeric() => after == Some('\''),
            Some(_) => true, // '(' ' ' etc. — punctuation chars
            None => false,
        };
        if is_char {
            self.bump(); // opening quote
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push_token(TokenKind::Literal, String::from("'…'"), line);
        } else {
            // A lifetime: consume the quote and the identifier.
            self.bump();
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push_token(TokenKind::Literal, text, line);
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let take = c.is_alphanumeric()
                || c == '_'
                // `1.5` but not `1..5` and not a method call `1.max(2)`.
                || (c == '.'
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
                // Exponent sign: `2e-6`, `1E+9`.
                || ((c == '+' || c == '-')
                    && text
                        .chars()
                        .last()
                        .is_some_and(|p| p == 'e' || p == 'E')
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if take {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_token(TokenKind::Literal, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_never_yield_idents() {
        let src = r##"
            // Instant in a comment
            /* SystemTime in /* a nested */ block */
            /// Instant in a doc comment
            let s = "Instant::now()";
            let r = r#"thread_rng()"#;
            let c = 'I';
            fn real() {}
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real".to_string()));
        assert!(!ids.iter().any(|i| i == "Instant" || i == "SystemTime"));
        assert!(!ids.iter().any(|i| i == "thread_rng"));
    }

    #[test]
    fn lifetimes_do_not_swallow_code() {
        let ids = idents("fn f<'a>(x: &'a Instant) {}");
        assert!(ids.contains(&"Instant".to_string()));
    }

    #[test]
    fn path_separator_is_fused() {
        let lexed = lex("std::time::Instant");
        let puncts: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, vec!["::", "::"]);
    }

    #[test]
    fn numeric_literals_with_exponents_stay_literal() {
        let lexed = lex("let x = 2e-6; let y = 1.5e+9f64; let z = 0..5;");
        assert!(lexed.tokens.iter().any(|t| t.text == "2e-6"));
        assert!(lexed.tokens.iter().any(|t| t.text == "1.5e+9f64"));
        // `0..5` stays a range, not a malformed float.
        assert!(lexed.tokens.iter().filter(|t| t.is_punct(".")).count() == 2);
    }

    #[test]
    fn trailing_and_standalone_comments_are_distinguished() {
        let lexed = lex("let x = 1; // trailing\n// standalone\nlet y = 2;");
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
        assert_eq!(lexed.next_code_line(2), Some(3));
    }

    #[test]
    fn doc_comments_are_flagged_as_doc() {
        let lexed = lex("/// doc\n//! inner doc\n// plain\n//// many slashes\nfn f() {}");
        let doc: Vec<bool> = lexed.comments.iter().map(|c| c.doc).collect();
        assert_eq!(doc, vec![true, true, false, false]);
    }
}
