//! Product quantization (PQ): codebook training, encoding and decoding.
//!
//! PQ splits a `dim`-dimensional vector into `m` sub-vectors of `dim/m`
//! components each and quantizes every sub-vector independently against a
//! 256-entry codebook, producing one byte per sub-vector. A 128-d float
//! vector (512 B) becomes a 16-byte code with `m = 16` — the 8× compression
//! quoted in the paper's §2.1 example (it quotes 64 B because it counts the
//! uint8 source representation of SIFT).

use crate::distance::nearest_centroid;
use crate::kmeans::{KMeans, KMeansParams};
use crate::vector::Dataset;

/// Number of centroids per sub-quantizer. Fixed at 256 so codes fit in `u8`,
/// exactly as in Faiss's `IndexIVFPQ` default and the UpANNS paper.
pub const KSUB: usize = 256;

/// A PQ code: `m` bytes, one codebook index per sub-vector.
pub type PqCode = Vec<u8>;

/// A trained product quantizer.
#[derive(Debug, Clone)]
pub struct ProductQuantizer {
    dim: usize,
    m: usize,
    dsub: usize,
    /// Codebooks stored as `m` contiguous blocks of `KSUB * dsub` floats:
    /// `codebooks[sub][code]` is at `sub * KSUB * dsub + code * dsub`.
    codebooks: Vec<f32>,
}

impl ProductQuantizer {
    /// Trains a product quantizer with `m` sub-quantizers on `data`.
    ///
    /// # Panics
    /// Panics if `data.dim() % m != 0`, if `m == 0`, or if `data` has fewer
    /// than `KSUB` points (each sub-quantizer needs at least 256 training
    /// sub-vectors).
    pub fn train(data: &Dataset, m: usize, seed: u64) -> Self {
        assert!(m > 0, "m must be positive");
        assert!(
            data.dim().is_multiple_of(m),
            "dimension {} not divisible by m {}",
            data.dim(),
            m
        );
        assert!(
            data.len() >= KSUB,
            "PQ training needs at least {KSUB} points, got {}",
            data.len()
        );
        let dim = data.dim();
        let dsub = dim / m;
        let mut codebooks = vec![0.0f32; m * KSUB * dsub];
        for sub in 0..m {
            let sub_data = data.subspace(m, sub);
            let params = KMeansParams::new(KSUB).with_max_iterations(15);
            let km = KMeans::train(&sub_data, &params, seed.wrapping_add(sub as u64));
            codebooks[sub * KSUB * dsub..(sub + 1) * KSUB * dsub]
                .copy_from_slice(km.centroids_flat());
        }
        Self {
            dim,
            m,
            dsub,
            codebooks,
        }
    }

    /// Builds a quantizer from pre-existing codebooks (used by tests and by
    /// synthetic index construction).
    ///
    /// # Panics
    /// Panics if the codebook buffer does not contain exactly
    /// `m * KSUB * (dim/m)` floats.
    pub fn from_codebooks(dim: usize, m: usize, codebooks: Vec<f32>) -> Self {
        assert!(m > 0 && dim.is_multiple_of(m));
        let dsub = dim / m;
        assert_eq!(codebooks.len(), m * KSUB * dsub, "codebook size mismatch");
        Self {
            dim,
            m,
            dsub,
            codebooks,
        }
    }

    /// Original vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of sub-quantizers (bytes per code).
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Sub-vector dimensionality (`dim / m`).
    #[inline]
    pub fn dsub(&self) -> usize {
        self.dsub
    }

    /// The centroid for `(sub, code)`.
    #[inline]
    pub fn centroid(&self, sub: usize, code: u8) -> &[f32] {
        let start = sub * KSUB * self.dsub + code as usize * self.dsub;
        &self.codebooks[start..start + self.dsub]
    }

    /// The full flat codebook buffer (`m * 256 * dsub` floats). This is what
    /// gets staged into DPU WRAM during LUT construction (32 KB for SIFT:
    /// 128 dims × 256 entries × 1 B in the paper's uint8 accounting).
    #[inline]
    pub fn codebooks_flat(&self) -> &[f32] {
        &self.codebooks
    }

    /// Size in bytes of the codebook if stored at `bytes_per_component`
    /// precision (the paper stores uint8 components ⇒ `dim * 256` bytes).
    pub fn codebook_bytes(&self, bytes_per_component: usize) -> usize {
        self.dim * KSUB * bytes_per_component
    }

    /// Encodes one vector into an `m`-byte PQ code.
    ///
    /// # Panics
    /// Panics if `v.len() != self.dim()`.
    pub fn encode(&self, v: &[f32]) -> PqCode {
        assert_eq!(v.len(), self.dim, "encode dimension mismatch");
        let mut code = Vec::with_capacity(self.m);
        for sub in 0..self.m {
            let sv = &v[sub * self.dsub..(sub + 1) * self.dsub];
            let table = &self.codebooks[sub * KSUB * self.dsub..(sub + 1) * KSUB * self.dsub];
            let (idx, _) = nearest_centroid(sv, table, self.dsub);
            code.push(idx as u8);
        }
        code
    }

    /// Encodes every vector of a dataset.
    pub fn encode_all(&self, data: &Dataset) -> Vec<PqCode> {
        data.iter().map(|v| self.encode(v)).collect()
    }

    /// Decodes a code back to its reconstruction (the concatenation of the
    /// selected centroids).
    pub fn decode(&self, code: &[u8]) -> Vec<f32> {
        assert_eq!(code.len(), self.m, "decode code length mismatch");
        let mut out = Vec::with_capacity(self.dim);
        for (sub, &c) in code.iter().enumerate() {
            out.extend_from_slice(self.centroid(sub, c));
        }
        out
    }

    /// Mean squared reconstruction error of the quantizer over `data` — the
    /// standard quality metric for a PQ codebook.
    pub fn reconstruction_mse(&self, data: &Dataset) -> f32 {
        if data.is_empty() {
            return 0.0;
        }
        let mut total = 0.0f64;
        for v in data.iter() {
            let rec = self.decode(&self.encode(v));
            total += crate::distance::l2_squared(v, &rec) as f64;
        }
        (total / data.len() as f64) as f32
    }
}

/// Packs a slice of PQ codes (each of length `m`) into one contiguous byte
/// buffer, the layout used for MRAM-resident inverted lists.
pub fn pack_codes(codes: &[PqCode], m: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(codes.len() * m);
    for c in codes {
        assert_eq!(c.len(), m, "code length mismatch while packing");
        out.extend_from_slice(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::l2_squared;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        let mut v = vec![0.0f32; dim];
        for _ in 0..n {
            for x in v.iter_mut() {
                *x = rng.gen_range(0.0..255.0);
            }
            ds.push(&v);
        }
        ds
    }

    #[test]
    fn encode_decode_reduces_error_vs_random_code() {
        let ds = random_dataset(600, 16, 1);
        let pq = ProductQuantizer::train(&ds, 4, 7);
        assert_eq!(pq.m(), 4);
        assert_eq!(pq.dsub(), 4);

        let v = ds.vector(5);
        let code = pq.encode(v);
        assert_eq!(code.len(), 4);
        let rec = pq.decode(&code);
        let err = l2_squared(v, &rec);

        // A deliberately wrong code should reconstruct worse on average.
        let wrong = vec![(code[0].wrapping_add(97)), 3, 200, 150];
        let wrong_rec = pq.decode(&wrong);
        let wrong_err = l2_squared(v, &wrong_rec);
        assert!(err <= wrong_err, "{err} vs {wrong_err}");
    }

    #[test]
    fn encode_is_nearest_centroid_per_subspace() {
        let ds = random_dataset(400, 8, 3);
        let pq = ProductQuantizer::train(&ds, 2, 11);
        let v = ds.vector(0);
        let code = pq.encode(v);
        for sub in 0..2 {
            let sv = &v[sub * 4..(sub + 1) * 4];
            let chosen = pq.centroid(sub, code[sub]);
            let chosen_d = l2_squared(sv, chosen);
            // No other centroid in this subspace may be strictly closer.
            for c in 0..=255u8 {
                let d = l2_squared(sv, pq.centroid(sub, c));
                assert!(d >= chosen_d - 1e-3);
            }
        }
    }

    #[test]
    fn reconstruction_mse_is_finite_and_smallish() {
        let ds = random_dataset(512, 16, 5);
        let pq = ProductQuantizer::train(&ds, 8, 5);
        let mse = pq.reconstruction_mse(&ds);
        assert!(mse.is_finite());
        // Uniform data in [0,255): per-dimension variance ≈ 5400; PQ with 256
        // centroids per 2-d subspace should do far better than no quantization
        // at all (variance * dim).
        assert!(mse < 5400.0 * 16.0);
    }

    #[test]
    fn pack_codes_concatenates() {
        let codes = vec![vec![1u8, 2], vec![3, 4], vec![5, 6]];
        assert_eq!(pack_codes(&codes, 2), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_indivisible_dim() {
        let ds = random_dataset(300, 10, 0);
        let _ = ProductQuantizer::train(&ds, 3, 0);
    }

    #[test]
    fn from_codebooks_roundtrip() {
        // dim=2, m=2, dsub=1: codebook entry value equals its index.
        let mut cb = vec![0.0f32; 2 * KSUB];
        for sub in 0..2 {
            for code in 0..KSUB {
                cb[sub * KSUB + code] = code as f32;
            }
        }
        let pq = ProductQuantizer::from_codebooks(2, 2, cb);
        let code = pq.encode(&[42.3, 17.8]);
        assert_eq!(code, vec![42, 18]);
        assert_eq!(pq.decode(&code), vec![42.0, 18.0]);
        assert_eq!(pq.codebook_bytes(1), 2 * 256);
    }
}
