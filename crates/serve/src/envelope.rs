//! The recovery envelope: how deep SLO attainment dips after a host failure
//! and how long it takes to climb back.
//!
//! A replay under a [`FaultSchedule`](upanns::replica::FaultSchedule)
//! produces per-query outcomes — `(arrival, Some(latency))` for answered
//! queries, `(arrival, None)` for shed ones. [`RecoveryEnvelope`] buckets
//! those outcomes by arrival time into an SLO-attainment timeline and
//! summarizes the failure transient with three numbers CI can assert:
//! the pre-failure **baseline** attainment, the **max dip** below it after
//! the failure instant, and the **recovery time** until attainment returns
//! to within [`RECOVERY_TOLERANCE`] of the baseline.

/// How close (absolute attainment fraction) a post-failure bucket must get
/// to the baseline to count as recovered.
pub const RECOVERY_TOLERANCE: f64 = 0.05;

/// The bucketed SLO-attainment timeline around one failure instant.
#[derive(Debug, Clone)]
pub struct RecoveryEnvelope {
    /// Bucket width in simulated seconds.
    pub bucket_s: f64,
    /// The failure instant the envelope is anchored on.
    pub t_down: f64,
    /// Mean attainment over the buckets that end at or before `t_down`.
    pub baseline_attainment: f64,
    /// Deepest drop below the baseline in any bucket starting at or after
    /// `t_down` (0 when the failure never showed).
    pub max_dip: f64,
    /// Start of the bucket where the deepest dip occurred.
    pub dip_at: f64,
    /// Seconds from `t_down` until the end of the first post-dip bucket
    /// whose attainment is back within [`RECOVERY_TOLERANCE`] of the
    /// baseline (`f64::INFINITY` when it never recovers).
    pub recovery_s: f64,
    /// Whether attainment recovered within the observed timeline.
    pub recovered: bool,
    /// `(bucket_start, attainment)` per bucket, in time order.
    pub timeline: Vec<(f64, f64)>,
}

impl RecoveryEnvelope {
    /// Builds the envelope from per-query `(arrival, Some(latency) | None)`
    /// outcomes (shed queries are `None` and always count as misses) against
    /// a per-query latency SLO of `slo_s` seconds, anchored on the failure
    /// instant `t_down`, with `bucket_s`-second buckets.
    ///
    /// Returns `None` when there is nothing to measure: no outcomes, or no
    /// complete bucket before `t_down` to establish a baseline.
    pub fn from_outcomes(
        outcomes: &[(f64, Option<f64>)],
        slo_s: f64,
        t_down: f64,
        bucket_s: f64,
    ) -> Option<Self> {
        assert!(bucket_s > 0.0, "bucket width must be positive");
        assert!(slo_s > 0.0, "per-query SLO must be positive");
        if outcomes.is_empty() {
            return None;
        }
        let horizon = outcomes
            .iter()
            .map(|&(a, _)| a)
            .fold(f64::NEG_INFINITY, f64::max);
        let buckets = (horizon / bucket_s).floor() as usize + 1;
        let mut hit = vec![0usize; buckets];
        let mut total = vec![0usize; buckets];
        for &(arrival, latency) in outcomes {
            if arrival < 0.0 {
                continue;
            }
            let b = ((arrival / bucket_s).floor() as usize).min(buckets - 1);
            total[b] += 1;
            if latency.is_some_and(|l| l <= slo_s) {
                hit[b] += 1;
            }
        }
        let timeline: Vec<(f64, f64)> = (0..buckets)
            .filter(|&b| total[b] > 0)
            .map(|b| (b as f64 * bucket_s, hit[b] as f64 / total[b] as f64))
            .collect();

        // Baseline: buckets that end before the failure.
        let before: Vec<f64> = timeline
            .iter()
            .filter(|&&(start, _)| start + bucket_s <= t_down)
            .map(|&(_, a)| a)
            .collect();
        if before.is_empty() {
            return None;
        }
        let baseline = before.iter().sum::<f64>() / before.len() as f64;

        // Dip: the worst bucket at or after the failure instant.
        let mut max_dip = 0.0f64;
        let mut dip_at = t_down;
        for &(start, attainment) in timeline.iter().filter(|&&(s, _)| s + bucket_s > t_down) {
            let dip = (baseline - attainment).max(0.0);
            if dip > max_dip {
                max_dip = dip;
                dip_at = start;
            }
        }

        // Recovery: the first bucket after the dip back within tolerance.
        let mut recovery_s = f64::INFINITY;
        let mut recovered = false;
        if max_dip <= RECOVERY_TOLERANCE {
            // The failure never dented attainment: recovered immediately.
            recovery_s = 0.0;
            recovered = true;
        } else {
            for &(start, attainment) in timeline.iter().filter(|&&(s, _)| s > dip_at) {
                if attainment >= baseline - RECOVERY_TOLERANCE {
                    recovery_s = (start + bucket_s - t_down).max(0.0);
                    recovered = true;
                    break;
                }
            }
        }

        Some(Self {
            bucket_s,
            t_down,
            baseline_attainment: baseline,
            max_dip,
            dip_at,
            recovery_s,
            recovered,
            timeline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `n` outcomes per second over `[from, to)`, hitting the SLO iff `ok`.
    fn span(outcomes: &mut Vec<(f64, Option<f64>)>, from: f64, to: f64, n: usize, ok: bool) {
        let per = (to - from) / n as f64;
        for i in 0..n {
            let t = from + i as f64 * per;
            outcomes.push((t, if ok { Some(0.1) } else { None }));
        }
    }

    #[test]
    fn a_clean_dip_and_recovery_is_measured() {
        let mut o = Vec::new();
        span(&mut o, 0.0, 20.0, 200, true); // healthy baseline
        span(&mut o, 20.0, 30.0, 100, false); // outage: everything sheds
        span(&mut o, 30.0, 60.0, 300, true); // recovered
        let env = RecoveryEnvelope::from_outcomes(&o, 1.0, 20.0, 5.0).expect("measurable");
        assert!((env.baseline_attainment - 1.0).abs() < 1e-9);
        assert!((env.max_dip - 1.0).abs() < 1e-9, "the outage buckets hit 0 attainment");
        assert!(env.dip_at >= 20.0 && env.dip_at < 30.0);
        assert!(env.recovered);
        // Dip bottom is the 20–25 s or 25–30 s bucket; the first healthy
        // bucket after it ends at 35 s ⇒ recovery within 15 s of t_down.
        assert!(env.recovery_s > 0.0 && env.recovery_s <= 15.0, "{}", env.recovery_s);
    }

    #[test]
    fn a_failure_absorbed_by_replicas_recovers_immediately() {
        let mut o = Vec::new();
        span(&mut o, 0.0, 60.0, 600, true); // hedging absorbed the outage
        let env = RecoveryEnvelope::from_outcomes(&o, 1.0, 20.0, 5.0).expect("measurable");
        assert_eq!(env.max_dip, 0.0);
        assert!(env.recovered);
        assert_eq!(env.recovery_s, 0.0);
    }

    #[test]
    fn an_unrecovered_outage_reports_infinity() {
        let mut o = Vec::new();
        span(&mut o, 0.0, 20.0, 200, true);
        span(&mut o, 20.0, 60.0, 400, false); // never comes back
        let env = RecoveryEnvelope::from_outcomes(&o, 1.0, 20.0, 5.0).expect("measurable");
        assert!(!env.recovered);
        assert_eq!(env.recovery_s, f64::INFINITY);
        assert!(env.max_dip > 0.9);
    }

    #[test]
    fn latency_misses_count_like_sheds() {
        let mut o = Vec::new();
        span(&mut o, 0.0, 10.0, 100, true);
        // Answered, but 10× over the SLO: a miss, not a hit.
        for i in 0..50 {
            o.push((10.0 + i as f64 * 0.1, Some(10.0)));
        }
        span(&mut o, 15.0, 30.0, 150, true);
        let env = RecoveryEnvelope::from_outcomes(&o, 1.0, 10.0, 5.0).expect("measurable");
        assert!(env.max_dip > 0.9, "slow answers dent attainment");
        assert!(env.recovered);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(RecoveryEnvelope::from_outcomes(&[], 1.0, 10.0, 5.0).is_none());
        // No complete bucket before the failure: no baseline.
        let o = vec![(0.5, Some(0.1)), (1.0, Some(0.1))];
        assert!(RecoveryEnvelope::from_outcomes(&o, 1.0, 0.5, 5.0).is_none());
    }
}
