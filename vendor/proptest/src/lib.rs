//! Minimal, dependency-free stand-in for the `proptest` property-testing
//! framework.
//!
//! The build environment has no crates-registry access, so this vendored
//! crate implements the API subset used by `tests/properties.rs`:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * numeric range strategies (`0.0f32..1e6`, `1usize..40`, `0u8..=255`),
//! * `any::<bool>()` and tuples of strategies (`(any::<bool>(), 0u64..9)`),
//! * `prop::collection::vec(strategy, size)` with fixed or ranged sizes.
//!
//! Inputs are sampled uniformly from a deterministic per-case RNG rather
//! than grown/shrunk the way real proptest does; each failing case panics
//! with the case index so it can be replayed.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types `any::<T>()` can sample uniformly from their whole domain.
pub trait Arbitrary {
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.gen()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Uniform strategy over `T`'s whole domain (`any::<bool>()`), mirroring
/// proptest's `any` for the types with an [`Arbitrary`] impl here.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Collection size argument: either an exact `usize` or a `Range<usize>`.
pub trait IntoSizeRange {
    fn sample_len(&self, rng: &mut SmallRng) -> usize;
}

impl IntoSizeRange for usize {
    fn sample_len(&self, _rng: &mut SmallRng) -> usize {
        *self
    }
}

impl IntoSizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut SmallRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut SmallRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// `prop::collection` and friends, mirroring proptest's module layout.
pub mod prop {
    pub mod collection {
        use super::super::{IntoSizeRange, Strategy};
        use rand::rngs::SmallRng;

        pub struct VecStrategy<S: Strategy, L: IntoSizeRange> {
            element: S,
            size: L,
        }

        pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
            VecStrategy { element, size }
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
                let len = self.size.sample_len(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::SmallRng;
    pub use rand::SeedableRng;
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Run each contained `#[test]` function over many sampled inputs.
///
/// Inputs are regenerated per case from a seed derived from the test name
/// and case index, so runs are deterministic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs $config; $($rest)*);
    };
    (@funcs $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                // Mix the test name into the seed so sibling tests see
                // different streams.
                let mut seed = 0xcbf2_9ce4_8422_2325u64 ^ case as u64;
                for b in stringify!($name).bytes() {
                    seed = seed.wrapping_mul(0x1000_0000_01b3).wrapping_add(b as u64);
                }
                let mut rng =
                    <$crate::__rt::SmallRng as $crate::__rt::SeedableRng>::seed_from_u64(seed);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let run = move || $body;
                if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest case {case} of {} failed (seed {seed:#x})",
                        stringify!($name)
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Range strategies stay in bounds; vec sizes honour their range.
        #[test]
        fn ranges_and_vecs(
            x in 3usize..17,
            f in -2.0f32..2.0,
            v in prop::collection::vec(0u8..8, 1..6),
            fixed in prop::collection::vec(0.0f64..1.0, 4),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 8));
            prop_assert_eq!(fixed.len(), 4);
        }

        /// Tuple strategies sample each component; `any::<bool>()` compiles
        /// inside collections, the shape mutation suites rely on.
        #[test]
        fn tuples_and_any(
            pair in (0u8..4, 10usize..20),
            ops in prop::collection::vec((any::<bool>(), 0u64..9), 1..8),
        ) {
            prop_assert!(pair.0 < 4 && (10..20).contains(&pair.1));
            prop_assert!(!ops.is_empty() && ops.len() < 8);
            prop_assert!(ops.iter().all(|&(_, id)| id < 9));
        }
    }

    proptest! {
        /// The no-config form uses the default case count.
        #[test]
        fn default_config_form(k in 1usize..5) {
            prop_assert!((1..5).contains(&k));
        }
    }
}
