//! Opt3 (offline half): mining high-frequency code combinations with an
//! Element Co-occurrence Graph (ECG).
//!
//! PQ codes take values in `[0, 255]`, so real datasets contain positioned
//! element combinations that repeat across many vectors (the paper measures
//! the triplet (1, 15, 26) at positions (0, 1, 2) in 5.7 % of SIFT1B). For
//! each cluster we mine the top-`m` most frequent combinations of length up
//! to 3: nodes of the ECG are positioned elements `(position, code)`, edges
//! are weighted by pair co-occurrence counts, and frequent edges are extended
//! to triples. The partial LUT sums of the mined combinations are cached in
//! WRAM at query time so the distance loop replaces several lookups + adds
//! with one.

use std::collections::HashMap;

/// A positioned code element: `code` appearing at PQ position `position`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Element {
    /// PQ sub-quantizer index (column) the code appears in.
    pub position: u8,
    /// The code value.
    pub code: u8,
}

impl Element {
    /// Creates an element.
    pub fn new(position: u8, code: u8) -> Self {
        Self { position, code }
    }

    /// The flat LUT address of this element (`position * 256 + code`), the
    /// direct-address form used by the PIM-friendly encoding.
    pub fn lut_address(&self) -> usize {
        self.position as usize * 256 + self.code as usize
    }
}

/// A mined combination: 2 or 3 positioned elements, sorted by position.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Combo {
    elements: Vec<Element>,
}

impl Combo {
    /// Creates a combo from elements (sorted by position internally).
    ///
    /// # Panics
    /// Panics if fewer than 2 elements, or two elements share a position.
    pub fn new(mut elements: Vec<Element>) -> Self {
        assert!(elements.len() >= 2, "a combo needs at least two elements");
        elements.sort();
        for w in elements.windows(2) {
            assert_ne!(w[0].position, w[1].position, "duplicate position in combo");
        }
        Self { elements }
    }

    /// The combo's elements, sorted by position.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Number of elements covered (2 or 3).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Combos are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Flat LUT addresses of the member elements.
    pub fn lut_addresses(&self) -> Vec<usize> {
        self.elements.iter().map(|e| e.lut_address()).collect()
    }

    /// Whether the PQ code `code` (of length `m`) contains this combo at the
    /// right positions.
    pub fn matches(&self, code: &[u8]) -> bool {
        self.elements
            .iter()
            .all(|e| code.get(e.position as usize) == Some(&e.code))
    }

    /// The set of positions the combo covers.
    pub fn positions(&self) -> Vec<usize> {
        self.elements.iter().map(|e| e.position as usize).collect()
    }
}

/// The mined combination table of one cluster, ordered by descending support.
#[derive(Debug, Clone, Default)]
pub struct ComboTable {
    combos: Vec<Combo>,
    /// Support (number of matching vectors) of each combo.
    support: Vec<usize>,
}

impl ComboTable {
    /// An empty table (no combinations cached).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The mined combos, most frequent first.
    pub fn combos(&self) -> &[Combo] {
        &self.combos
    }

    /// The support count of combo `i`.
    pub fn support(&self, i: usize) -> usize {
        self.support[i]
    }

    /// Number of combos.
    pub fn len(&self) -> usize {
        self.combos.len()
    }

    /// Whether no combos were mined.
    pub fn is_empty(&self) -> bool {
        self.combos.is_empty()
    }

    /// WRAM bytes needed to cache the partial sums (one entry per combo).
    pub fn partial_sums_bytes(&self, bytes_per_entry: usize) -> usize {
        self.combos.len() * bytes_per_entry
    }

    /// Computes the partial LUT sums of every combo against a concrete LUT
    /// (the online step executed right after LUT construction, Figure 6's
    /// "Comb. Sum" stage).
    pub fn partial_sums(&self, lut: &annkit::lut::LookupTable) -> Vec<f32> {
        self.combos
            .iter()
            .map(|c| c.lut_addresses().iter().map(|&a| lut.get_flat(a)).sum())
            .collect()
    }
}

/// Mining parameters.
#[derive(Debug, Clone)]
pub struct MiningParams {
    /// Maximum combinations kept per cluster (the paper's `m = 256`).
    pub max_combos: usize,
    /// Target combination length (3 by default; pairs are kept when no strong
    /// third element exists).
    pub combo_len: usize,
    /// Minimum fraction of the cluster's vectors a combination must cover.
    pub min_support: f64,
}

impl Default for MiningParams {
    fn default() -> Self {
        Self {
            max_combos: 256,
            combo_len: 3,
            min_support: 0.02,
        }
    }
}

/// Mines the top combinations of one cluster's packed PQ codes.
///
/// `packed_codes` is the cluster's inverted-list payload (`n × m` bytes).
pub fn mine_cluster_combos(packed_codes: &[u8], m: usize, params: &MiningParams) -> ComboTable {
    assert!(m >= 2, "PQ codes need at least two positions");
    assert!(
        packed_codes.len().is_multiple_of(m),
        "packed code buffer not a multiple of m"
    );
    let n = packed_codes.len() / m;
    if n == 0 || params.max_combos == 0 {
        return ComboTable::empty();
    }
    let min_support = ((n as f64 * params.min_support).ceil() as usize).max(2);

    // ECG edges: co-occurrence counts of positioned element pairs.
    let mut pair_counts: HashMap<(Element, Element), usize> = HashMap::new();
    for code in packed_codes.chunks_exact(m) {
        for i in 0..m {
            for j in (i + 1)..m {
                let a = Element::new(i as u8, code[i]);
                let b = Element::new(j as u8, code[j]);
                *pair_counts.entry((a, b)).or_default() += 1;
            }
        }
    }

    // Keep the heaviest edges as candidate seeds.
    let mut edges: Vec<((Element, Element), usize)> = pair_counts
        .into_iter()
        .filter(|(_, c)| *c >= min_support)
        .collect();
    // Break count ties by element order so the surviving seed set (and hence
    // the offline encoding and simulated time) is identical across runs.
    edges.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    edges.truncate(params.max_combos * 4);
    if edges.is_empty() {
        return ComboTable::empty();
    }

    // Extend each frequent edge to a triple by counting third elements.
    let mut triple_counts: HashMap<(usize, Element), usize> = HashMap::new();
    if params.combo_len >= 3 {
        for code in packed_codes.chunks_exact(m) {
            for (edge_idx, ((a, b), _)) in edges.iter().enumerate() {
                if code[a.position as usize] == a.code && code[b.position as usize] == b.code {
                    for (p, &cp) in code.iter().enumerate() {
                        if p != a.position as usize && p != b.position as usize {
                            let third = Element::new(p as u8, cp);
                            *triple_counts.entry((edge_idx, third)).or_default() += 1;
                        }
                    }
                }
            }
        }
    }

    // Assemble combos: for each seed edge, take its strongest third element if
    // supported, otherwise keep the pair. Deduplicate element sets.
    let mut seen: HashMap<Vec<Element>, usize> = HashMap::new();
    for (edge_idx, ((a, b), pair_support)) in edges.iter().enumerate() {
        let best_third = triple_counts
            .iter()
            .filter(|((e, _), _)| *e == edge_idx)
            // Prefer the smallest element on count ties to keep mining
            // independent of HashMap iteration order.
            .max_by(|((_, ta), ca), ((_, tb), cb)| ca.cmp(cb).then_with(|| tb.cmp(ta)))
            .map(|((_, third), &c)| (*third, c));
        let (mut elements, support) = match best_third {
            Some((third, c)) if c >= min_support && params.combo_len >= 3 => {
                (vec![*a, *b, third], c)
            }
            _ => (vec![*a, *b], *pair_support),
        };
        elements.sort();
        let entry = seen.entry(elements).or_insert(0);
        *entry = (*entry).max(support);
    }

    let mut ranked: Vec<(Vec<Element>, usize)> = seen.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked.truncate(params.max_combos);

    let mut combos = Vec::with_capacity(ranked.len());
    let mut support = Vec::with_capacity(ranked.len());
    for (elements, s) in ranked {
        combos.push(Combo::new(elements));
        support.push(s);
    }
    ComboTable { combos, support }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds packed codes where a triple (5, 9, 13) at positions (0, 1, 2)
    /// appears in 40 % of vectors and the rest is pseudo-random.
    fn codes_with_pattern(n: usize, m: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(n * m);
        for i in 0..n {
            for p in 0..m {
                let noise = ((i * 31 + p * 17) % 251) as u8;
                out.push(noise);
            }
            if i % 5 < 2 {
                let base = out.len() - m;
                out[base] = 5;
                out[base + 1] = 9;
                out[base + 2] = 13;
            }
        }
        out
    }

    #[test]
    fn finds_the_injected_triple() {
        let codes = codes_with_pattern(500, 8);
        let table = mine_cluster_combos(&codes, 8, &MiningParams::default());
        assert!(!table.is_empty());
        let target = Combo::new(vec![
            Element::new(0, 5),
            Element::new(1, 9),
            Element::new(2, 13),
        ]);
        let found = table.combos().contains(&target);
        assert!(found, "expected the injected triple to be mined: {:?}", table.combos().first());
        // Its support should be roughly 40 % of the cluster.
        let idx = table.combos().iter().position(|c| *c == target).unwrap();
        assert!(table.support(idx) >= 150, "support {}", table.support(idx));
    }

    #[test]
    fn random_codes_yield_few_or_no_combos() {
        // Pseudo-random codes without injected structure: with a 2 % support
        // threshold nothing (or almost nothing) should qualify.
        let mut codes = Vec::new();
        for i in 0..400usize {
            for p in 0..8usize {
                codes.push(((i * 7919 + p * 104729) % 256) as u8);
            }
        }
        let table = mine_cluster_combos(&codes, 8, &MiningParams::default());
        assert!(table.len() <= 4, "unexpectedly many combos: {}", table.len());
    }

    #[test]
    fn combo_matching_and_addresses() {
        let combo = Combo::new(vec![Element::new(2, 7), Element::new(0, 3)]);
        // Elements are sorted by position.
        assert_eq!(combo.elements()[0].position, 0);
        assert_eq!(combo.positions(), vec![0, 2]);
        assert_eq!(combo.lut_addresses(), vec![3, 2 * 256 + 7]);
        assert!(combo.matches(&[3, 99, 7, 0]));
        assert!(!combo.matches(&[3, 99, 8, 0]));
        assert_eq!(combo.len(), 2);
        assert!(!combo.is_empty());
    }

    #[test]
    fn partial_sums_match_manual_lookup() {
        use annkit::lut::LookupTable;
        use annkit::pq::ProductQuantizer;
        use annkit::vector::Dataset;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};

        let mut rng = SmallRng::seed_from_u64(3);
        let mut ds = Dataset::new(8);
        let mut v = [0.0f32; 8];
        for _ in 0..400 {
            for x in v.iter_mut() {
                *x = rng.gen_range(-1.0..1.0);
            }
            ds.push(&v);
        }
        let pq = ProductQuantizer::train(&ds, 4, 1);
        let lut = LookupTable::build(&pq, ds.vector(0));

        let combo = Combo::new(vec![Element::new(1, 10), Element::new(3, 200)]);
        let mut table = ComboTable::empty();
        table.combos.push(combo.clone());
        table.support.push(5);
        let sums = table.partial_sums(&lut);
        let expected = lut.get(1, 10) + lut.get(3, 200);
        assert!((sums[0] - expected).abs() < 1e-6);
        assert_eq!(table.partial_sums_bytes(4), 4);
    }

    #[test]
    #[should_panic(expected = "duplicate position")]
    fn combos_reject_duplicate_positions() {
        let _ = Combo::new(vec![Element::new(1, 2), Element::new(1, 3)]);
    }

    #[test]
    fn empty_input_is_handled() {
        let table = mine_cluster_combos(&[], 8, &MiningParams::default());
        assert!(table.is_empty());
        assert_eq!(table.len(), 0);
        assert_eq!(table.partial_sums_bytes(2), 0);
    }
}
