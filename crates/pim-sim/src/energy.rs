//! Energy and cost-efficiency models.
//!
//! The paper compares architectures by QPS per watt (Figure 12b) and QPS per
//! dollar (§5.2), both computed from the peak-power / list-price figures in
//! Table 1. This module provides that arithmetic for any device.

use crate::config::PimConfig;

/// Peak-power + price description of a device, sufficient for the paper's
/// efficiency comparisons.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Human-readable device name.
    pub name: String,
    /// Peak power draw in watts.
    pub peak_watts: f64,
    /// Approximate list price in USD.
    pub price_usd: f64,
}

impl EnergyModel {
    /// Creates an energy model from explicit numbers.
    pub fn new(name: impl Into<String>, peak_watts: f64, price_usd: f64) -> Self {
        assert!(peak_watts > 0.0, "peak power must be positive");
        Self {
            name: name.into(),
            peak_watts,
            price_usd,
        }
    }

    /// Model for a PIM deployment (power and price scale with DIMM count).
    pub fn pim(config: &PimConfig) -> Self {
        Self::new(
            format!("UPMEM PIM x{} DPUs", config.num_dpus),
            config.peak_watts(),
            config.price_usd(),
        )
    }

    /// The paper's CPU platform: 2× Xeon Silver 4110, 190 W, ~1,400 USD.
    pub fn paper_cpu() -> Self {
        Self::new("2x Intel Xeon Silver 4110", 190.0, 1_400.0)
    }

    /// The paper's GPU platform: NVIDIA A100 80 GB PCIe, 300 W, ~20,000 USD.
    pub fn paper_gpu() -> Self {
        Self::new("NVIDIA A100 80GB", 300.0, 20_000.0)
    }

    /// Energy consumed over `seconds` of runtime under the peak-power
    /// approximation, in joules.
    pub fn energy_joules(&self, seconds: f64) -> f64 {
        self.peak_watts * seconds
    }

    /// Queries per second per watt given an achieved QPS.
    pub fn qps_per_watt(&self, qps: f64) -> f64 {
        qps / self.peak_watts
    }

    /// Queries per second per dollar of hardware given an achieved QPS.
    pub fn qps_per_dollar(&self, qps: f64) -> f64 {
        if self.price_usd <= 0.0 {
            0.0
        } else {
            qps / self.price_usd
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_devices_match_table1() {
        let cpu = EnergyModel::paper_cpu();
        let gpu = EnergyModel::paper_gpu();
        let pim = EnergyModel::pim(&PimConfig::paper_seven_dimms());
        assert_eq!(cpu.peak_watts, 190.0);
        assert_eq!(gpu.peak_watts, 300.0);
        assert!((pim.peak_watts - 162.5).abs() < 1.0);
        assert!(pim.price_usd <= 2_800.0);
        assert!(gpu.price_usd > 7.0 * pim.price_usd.max(1.0) / 2.0);
    }

    #[test]
    fn efficiency_math() {
        let gpu = EnergyModel::paper_gpu();
        assert!((gpu.energy_joules(2.0) - 600.0).abs() < 1e-9);
        assert!((gpu.qps_per_watt(3000.0) - 10.0).abs() < 1e-9);
        assert!((gpu.qps_per_dollar(20_000.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn same_qps_pim_wins_efficiency() {
        // At equal QPS, the 7-DIMM PIM system should beat the A100 on both
        // QPS/W and QPS/$ — the premise of the paper's efficiency claims.
        let pim = EnergyModel::pim(&PimConfig::paper_seven_dimms());
        let gpu = EnergyModel::paper_gpu();
        let qps = 1_000.0;
        assert!(pim.qps_per_watt(qps) > gpu.qps_per_watt(qps));
        assert!(pim.qps_per_dollar(qps) > gpu.qps_per_dollar(qps));
    }

    #[test]
    #[should_panic(expected = "peak power")]
    fn zero_power_is_rejected() {
        let _ = EnergyModel::new("bogus", 0.0, 1.0);
    }
}
