//! Fixture: the empty-queue arm is handled instead of panicking.

pub fn head(queue: &[u32]) -> Option<u32> {
    queue.first().copied()
}
