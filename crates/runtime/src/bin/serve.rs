//! `serve` — replay a timed query stream through the serving front-end on
//! every engine, under both a fixed and an SLO-adaptive batch policy, and
//! report sustained QPS, latency percentiles and SLO attainment.
//!
//! ```text
//! cargo run --release -p upanns-runtime --bin serve -- [--queries N] [--qps R]
//!     [--repeat F] [--slo-ms S] [--hosts H] [--max-chunk C]
//!     [--engines cpu,gpu,pim-naive,upanns,multihost]
//!     [--policy fixed|adaptive|both] [--tenants SPEC] [--json PATH]
//!     [--runtime replay|threaded|twin] [--workers LIST] [--sweep-qps LIST]
//!     [--work-scale X] [--queue N] [--answers PATH]
//!     [--replicas R] [--fault HOST@DOWN..UP[,...]] [--hedge-ms B]
//!     [--mutations upsert=QPS,delete=QPS[,seed=N] | none]
//! ```
//!
//! # Runtimes
//!
//! `--runtime replay` (the default) is the discrete-event replay described
//! below — single-threaded, simulated clock, byte-reproducible.
//!
//! `--runtime threaded` runs the **real multi-threaded pipeline**
//! ([`upanns_runtime::pipeline`]) against the wall clock: for every worker
//! count in `--workers` and every offered rate in `--sweep-qps` it serves a
//! fresh stream on a PIM-backed engine (each worker emulating one modeled
//! device's occupancy in real time) and reports *measured* wall-clock
//! sustained QPS and latency percentiles, plus one multi-tenant row per
//! worker count. `--work-scale` sets the threaded engines' modeled work
//! scale (smaller than the replay's billion-scale projection so one bench
//! run finishes in minutes; the scaling *shape* is what the sweep records).
//! The wall-clock numbers are machine-dependent — CI checks the report's
//! schema and conservation invariants, not the numbers.
//!
//! `--runtime twin` runs the same pipeline in logical-trace mode: the
//! stream's arrival timestamps drive the batcher exactly as the replay
//! clock would, nothing sleeps, nothing is shed. Its answer map is
//! **byte-identical** to the replay's — `--answers PATH` writes the map
//! (one `workload TAB index TAB id,...` line per query, single-tenant
//! stream then the multi-tenant scenario) and exits; CI diffs the twin's
//! file against the replay's.
//!
//! Besides the single-tenant sweep, the binary replays a **multi-tenant
//! scenario** on the UpANNS engine (whenever `upanns` is among the selected
//! engines): several tenants with their own Poisson rates, option mixes,
//! weights and p99 SLOs share one serving front-end, under four policies —
//! the fixed global window, one global [`SloController`] (which can only
//! target the *tightest* SLO in the mix), the per-tenant [`ControllerBank`]
//! with whole-batch close-order dispatch (window-level isolation only), and
//! the same bank under **priority-chunked engine dispatch** (`--max-chunk`,
//! the `adaptive-tenant-chunked` row): bulk batches hit the serial engine
//! in size-capped chunks, earliest SLO deadline first, so the tight tenant
//! waits at most one chunk instead of a whole bulk batch. The committed
//! default is a tight-SLO low-rate tenant next to a loose-SLO bulk tenant
//! whose batches are individually longer than the tight tenant's slack:
//! chunked priority dispatch meets both SLOs where per-tenant windows alone
//! (and every single-window policy) miss the tight tenant — head-of-line
//! blocking is an engine-level problem the batching window cannot fix.
//!
//! `--tenants` replaces the built-in mix. The grammar is
//! `NAME:key=val,...;NAME:...` with keys `qps` (required), `queries`,
//! `slo-ms`, `weight`, `repeat` and `mix` (`KxN` pairs joined by `+`), e.g.
//! `tight:qps=3,queries=240,slo-ms=2500,weight=2,mix=10x8;bulk:qps=30,mix=10x4+20x8`.
//!
//! The replay is fully deterministic (fixed seeds, simulated clock), so the
//! `--json` output doubles as the committed `BENCH_serving.json` regression
//! baseline: rerun with the default arguments and diff.
//!
//! The default offered load is deliberately *small* relative to the PIM
//! engines' large-batch capacity: under the fixed low-latency batching window
//! the per-(query,cluster) granules don't amortize and the PIM engines
//! collapse, while the [`SloController`] widens the window until batches are
//! large enough to keep up — without letting the observed p99 cross the SLO.
//!
//! # The kill-a-host failover scenario
//!
//! Whenever `multihost` is among the selected engines, the replay also runs
//! the committed **failover scenario**: a replicated deployment
//! ([`ReplicatedMultiHost`], `--replicas` copies of each shard) serves a
//! dedicated single-tenant stream while the `--fault` schedule takes one
//! host down mid-stream. Hedged retries (`--hedge-ms`) and an SLO-feedback
//! [`Autoscaler`] (driven by the linear capacity model the
//! `capacity_planning` example fits) absorb the outage; the report row
//! carries the fault counters (`degraded`, `hedged`, `redispatched`,
//! `scale_events`, `migration_s`) and a [`RecoveryEnvelope`] — baseline SLO
//! attainment, the max dip after the failure instant, and the recovery time
//! — which CI asserts stays inside the committed bounds. The threaded path
//! adds one logical-mode failover row per worker count (same schedule, same
//! conservation checks), and `--answers` adds a `failover` section to the
//! twin byte-diff, proving the fault injection itself is deterministic.
//!
//! # The live-mutation scenario
//!
//! Whenever `upanns` is among the selected engines and `--mutations` is not
//! `none`, the replay also serves the single-tenant stream against a **live
//! index**: a deterministic per-tenant upsert/delete stream
//! ([`MutationSpec`]) is folded into an epoch-stamped [`SnapshotTimeline`]
//! (snapshot refresh every [`LIVE_REFRESH_S`] seconds, background compaction
//! per [`CompactionPolicy`]), queries resolve the snapshot active at their
//! *own arrival*, and the result cache invalidates entries stamped with an
//! older epoch. The row's audit ([`LiveSummary`]) re-executes every answer
//! at its arrival (`stale_served` must be 0 — CI asserts it), splits p99 by
//! compaction-window membership, and buckets recall against the
//! *exact up-to-the-second corpus* by mutation lag — the recall-vs-staleness
//! curve. A second row (`live-growth`) replays the multi-tenant scenario
//! while the bulk tenant's corpus grows mid-stream at
//! [`LIVE_GROWTH_UPSERT_QPS`] upserts/s. The threaded path adds one
//! logical-mode `live-mutation` row per worker count, and `--answers` adds a
//! `live` section to the twin byte-diff, proving mutation visibility is
//! deterministic across runtimes. `--mutations none` disables all of it and
//! reproduces the frozen-index rows bytewise.
//!
//! [`MutationSpec`]: annkit::workload::MutationSpec
//! [`SnapshotTimeline`]: annkit::mutation::SnapshotTimeline
//! [`CompactionPolicy`]: upanns::compaction::CompactionPolicy

#![forbid(unsafe_code)]

use annkit::ivf::{IvfPqIndex, IvfPqParams};
use annkit::mutation::MutableIvf;
use annkit::synthetic::SyntheticSpec;
use annkit::topk::Neighbor;
use annkit::vector::Dataset;
use annkit::workload::{
    MultiTenantSpec, MutationOp, MutationSpec, MutationStream, QueryStream, StreamSpec, TenantId,
    TenantSpec, WorkloadSpec,
};
use baselines::cpu::CpuFaissEngine;
use baselines::engine::{AnnEngine, QueryOptions, SearchRequest};
use baselines::gpu::GpuFaissEngine;
use pim_sim::config::PimConfig;
use upanns::builder::{BatchCapacity, UpAnnsBuilder};
use upanns::compaction::{plan_live_index, CompactionPolicy, LiveIndexPlan};
use upanns::config::UpAnnsConfig;
use upanns::multihost::{shard_ranges, InterconnectModel, MultiHostUpAnns};
use upanns::engine::UpAnnsEngine;
use upanns::replica::{FaultSchedule, ReplicatedMultiHost};
use upanns_runtime::{run_pipeline, RuntimeConfig, RuntimeReport};
use upanns_serve::batcher::BatchFormerConfig;
use upanns_serve::controller::{ControllerBank, SloController};
use upanns_serve::{
    Autoscaler, CapacityModel, FixedPolicy, RecoveryEnvelope, SearchService, ServiceConfig,
    ServiceReport,
};

/// Fixed tiny-scale evaluation shape (kept stable so the JSON baseline is
/// comparable PR-over-PR).
const DATASET_N: usize = 4_000;
const NLIST: usize = 512;
const PQ_M: usize = 16;
const DPUS: usize = 896;
/// Modeled dataset size for the work-scale projection. Chosen so the modeled
/// per-cluster size (MODELED_N / NLIST = 244k vectors) matches the reference
/// billion-scale configuration (10^9 / 4096) that the `figures` experiments
/// use — per-DPU granule times are then comparable to fig12's.
const MODELED_N: f64 = 1.25e8;

/// Every engine the binary knows how to build, in report order.
const KNOWN_ENGINES: [&str; 5] = ["cpu", "gpu", "pim-naive", "upanns", "multihost"];

/// Fixed shape of the committed kill-a-host failover scenario (see the
/// module docs). Three shards on three hosts with `--replicas 2` means one
/// host death leaves every shard covered — the dip comes from halved
/// effective parallelism and mid-flight redispatch, not lost answers.
const FAILOVER_SHARDS: usize = 3;
const FAILOVER_HOSTS: usize = 3;
/// The failover scenario's own stream: ~30 healthy seconds before the
/// default outage to establish a baseline, ~55 after it ends to drain the
/// backlog and prove recovery. The rate puts the chunk-capped deployment
/// near 80 % utilization, so stacking two shards on one surviving host
/// during the outage pushes it past saturation — the dip is real queueing,
/// not noise.
const FAILOVER_QUERIES: usize = 2_200;
const FAILOVER_QPS: f64 = 22.0;
/// Chunk cap for the failover scenario's dispatcher. Bounding the batch
/// amortization keeps the deployment's capacity roughly flat in offered
/// load, so losing a host genuinely saturates it instead of being absorbed
/// by ever-larger batches.
const FAILOVER_MAX_CHUNK: usize = 8;
const FAILOVER_SLO_MS: f64 = 2_500.0;
/// Envelope bucket width: wide enough that one bucket smooths Poisson
/// arrival noise at [`FAILOVER_QPS`], narrow enough to resolve the dip.
const ENVELOPE_BUCKET_S: f64 = 5.0;
/// Defaults for the failover flags — the committed baseline uses exactly
/// these, so a default-flag rerun reproduces `BENCH_serving.json` bytewise.
/// The down instant lands while a host-1 leg is in flight (so the committed
/// run exercises the redispatch path), and the hedge budget sits just above
/// one healthy shard leg (~0.2 s) and below a stacked two-leg pile-up
/// (~0.45 s), so hedges fire only while the outage is queueing work.
const DEFAULT_REPLICAS: usize = 2;
const DEFAULT_FAULT: &str = "1@31..45";
const DEFAULT_HEDGE_MS: f64 = 400.0;
/// `(hosts, sustained QPS)` samples for the autoscaler's linear capacity
/// model — the same OLS fit the `capacity_planning` example runs. The
/// samples are deliberately conservative (measured under small fixed
/// chunks, the scenario's worst case) so the planner keeps headroom; the
/// actual scale-up trigger is the SLO-miss window, with [`CapacityModel`]
/// bounding how far a step may reach.
const CAPACITY_SAMPLES: [(f64, f64); 4] = [(1.0, 5.8), (2.0, 11.2), (3.0, 16.4), (4.0, 21.3)];

/// The committed head-of-line (HOL) scenario: a tight-SLO low-rate tenant
/// sharing the engine with a loose-SLO bulk tenant whose batches are
/// individually *longer than the tight tenant's whole SLO*. Per-tenant
/// windows (the `adaptive-tenant` row) fix the window-level coupling but
/// not the engine-level one — the tight tenant still waits out whichever
/// bulk batch is in flight or already queued, and misses. Only the
/// priority-chunked dispatcher (`adaptive-tenant-chunked`) bounds that wait
/// to one chunk and meets both SLOs.
const DEFAULT_TENANTS: &str = "tight:qps=2,queries=200,slo-ms=700,weight=2,mix=10x8;\
                               bulk:qps=18,queries=1400,slo-ms=30000,weight=1,mix=10x4+10x8+20x8";

/// The threaded runtime's default multi-tenant mix: the same HOL shape as
/// [`DEFAULT_TENANTS`] but 3× the rate over an ~8-second arrival window,
/// because threaded rows burn *real* wall-clock time and run at a smaller
/// `--work-scale` (where the engine is proportionally faster). Calibrated
/// so the bulk tenant keeps one worker busy without overflowing the
/// admission queue — the committed rows show both tenants meeting their
/// SLOs under priority-chunked dispatch at every worker count.
const THREADED_TENANTS: &str = "tight:qps=6,queries=48,slo-ms=500,weight=2,mix=10x8;\
                                bulk:qps=54,queries=432,slo-ms=15000,weight=1,mix=10x4+10x8+20x8";

/// The committed live-mutation stream: upserts dominate (the corpus grows),
/// deletes churn, seed pinned so the epoch timeline — and therefore every
/// answer — is byte-reproducible. `--mutations none` turns the live rows
/// off entirely and reproduces the frozen-index baseline bytewise.
const DEFAULT_MUTATIONS: &str = "upsert=24,delete=8,seed=77";
/// Snapshot refresh cadence for the live-index plan: how many replay-clock
/// seconds of mutations accumulate before a new epoch becomes visible to
/// queries. Coarse enough that the default stream (~83 s) sees ~20 epochs
/// (a real staleness spread), fine enough that the recall-vs-staleness
/// buckets past lag 100 stay populated under the default rates.
const LIVE_REFRESH_S: f64 = 4.0;
/// The live growth scenario: the *last* tenant in the mix (the bulk tenant
/// in the committed default) grows its corpus mid-stream at this upsert
/// rate, with no deletes — the tenant-corpus-grows-mid-stream case.
const LIVE_GROWTH_UPSERT_QPS: f64 = 40.0;
/// The bench's compaction policy: the default skew trigger and cooldown but
/// a deliberately slow modeled fold. At the tiny fixture scale the default
/// 64 MiB/s folds the whole corpus in microseconds — no arrival ever lands
/// inside a window and the p99-during-compaction column measures nothing.
/// 256 KiB/s stretches each window to the order of a second, so the
/// committed rows catch real arrivals mid-compaction (and charge them the
/// modeled stall).
fn bench_compaction_policy() -> CompactionPolicy {
    CompactionPolicy {
        bytes_per_second: 256.0 * 1024.0,
        ..CompactionPolicy::default()
    }
}

/// Recall-vs-staleness bucket edges, by mutation lag: how many mutations the
/// served snapshot trails the exact corpus by at the query's arrival.
const STALENESS_BUCKETS: [(&str, u64, u64); 4] = [
    ("lag=0", 0, 0),
    ("lag=1-10", 1, 10),
    ("lag=11-100", 11, 100),
    ("lag=101+", 101, u64::MAX),
];

/// Modeled work scale of the threaded engines. The replay projects to
/// billion scale (`MODELED_N / DATASET_N` ≈ 31250) because simulated seconds
/// are free; the threaded runtime *emulates* modeled seconds in real time,
/// so it defaults to a smaller projection that keeps a full sweep under a
/// few minutes while leaving per-batch service times (milliseconds) far
/// above the host's sleep granularity. At this scale one UpANNS worker
/// saturates near ~300 QPS on the default stream, so the default
/// `--sweep-qps` top end (960) drives 1 worker deep into overload while 4
/// workers still keep up — the scaling knee lands inside the sweep.
const THREADED_WORK_SCALE: f64 = 4_000.0;

struct Args {
    queries: usize,
    qps: f64,
    repeat: f64,
    slo_ms: f64,
    hosts: usize,
    max_chunk: usize,
    engines: Vec<String>,
    policies: Vec<Policy>,
    tenants: String,
    tenants_overridden: bool,
    json: Option<String>,
    runtime: RuntimeKind,
    workers: Vec<usize>,
    sweep_qps: Vec<f64>,
    work_scale: f64,
    queue: Option<usize>,
    answers: Option<String>,
    replicas: usize,
    fault: String,
    hedge_ms: f64,
    mutations: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    Fixed,
    Adaptive,
}

/// Which front-end serves the stream (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RuntimeKind {
    /// Single-threaded discrete-event replay (the committed baseline).
    Replay,
    /// The real multi-threaded pipeline against the wall clock.
    Threaded,
    /// The multi-threaded pipeline in deterministic logical-trace mode.
    Twin,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            queries: 1_000,
            qps: 12.0,
            repeat: 0.25,
            slo_ms: 6_000.0,
            hosts: 2,
            max_chunk: 32,
            engines: KNOWN_ENGINES.iter().map(|s| s.to_string()).collect(),
            policies: vec![Policy::Fixed, Policy::Adaptive],
            tenants: DEFAULT_TENANTS.to_string(),
            tenants_overridden: false,
            json: None,
            runtime: RuntimeKind::Replay,
            workers: vec![1, 2, 4],
            sweep_qps: vec![60.0, 120.0, 240.0, 480.0, 960.0],
            work_scale: THREADED_WORK_SCALE,
            queue: None,
            answers: None,
            replicas: DEFAULT_REPLICAS,
            fault: DEFAULT_FAULT.to_string(),
            hedge_ms: DEFAULT_HEDGE_MS,
            mutations: DEFAULT_MUTATIONS.to_string(),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: serve [--queries N] [--qps R] [--repeat F] [--slo-ms S] [--hosts H]\n\
         \x20            [--max-chunk C] [--engines cpu,gpu,pim-naive,upanns,multihost] \n\
         \x20            [--policy fixed|adaptive|both] [--tenants SPEC] [--json PATH]\n\
         \x20            [--runtime replay|threaded|twin] [--workers LIST]\n\
         \x20            [--sweep-qps LIST] [--work-scale X] [--queue N] [--answers PATH]\n\
         \x20            [--replicas R] [--fault HOST@DOWN..UP[,...]] [--hedge-ms B]\n\
         \x20            [--mutations upsert=QPS,delete=QPS[,seed=N] | none]\n\
         \n\
         --mutations drives the live-mutation scenario (run whenever upanns is\n\
         selected): a deterministic upsert/delete stream is folded into an\n\
         epoch-stamped snapshot timeline (refresh every 4 s, background\n\
         compaction on list-size skew) that the engine serves while the\n\
         queries replay. 'none' disables it and reproduces the frozen-index\n\
         rows bytewise.\n\
         \n\
         The failover scenario (run whenever multihost is selected) serves a\n\
         replicated deployment under the --fault outage schedule: --replicas\n\
         copies of each shard (default 2; must be 1..=3 for the 3-host\n\
         deployment), hedged retries past --hedge-ms, and an SLO-feedback\n\
         autoscaler. The report row carries the fault counters and the\n\
         recovery envelope CI asserts on.\n\
         \n\
         --runtime threaded runs the real multi-threaded pipeline (wall clock):\n\
         one row per --workers value per --sweep-qps offered rate, plus one\n\
         multi-tenant row per worker count, on a PIM-backed engine at\n\
         --work-scale. --runtime twin runs the same pipeline in deterministic\n\
         logical-trace mode; with --answers PATH it writes the answer map and\n\
         exits (byte-identical to --runtime replay --answers on the same\n\
         stream). --queue overrides the admission queue capacity.\n\
         \n\
         --max-chunk caps how many queries one dispatch may commit the engine to\n\
         in the chunked multi-tenant row (adaptive-tenant-chunked).\n\
         \n\
         --tenants grammar: NAME:key=val,...;NAME:... with keys qps (required),\n\
         queries, slo-ms, weight, repeat, mix (KxN pairs joined by '+'), e.g.\n\
         \x20  tight:qps=3,slo-ms=2500,weight=2,mix=10x8;bulk:qps=30,mix=10x4+20x8\n\
         The multi-tenant scenario replays on the upanns engine when selected."
    );
    std::process::exit(0);
}

/// Exits nonzero with a clear message — the fate of an unknown engine,
/// policy name, or malformed tenant spec (silently skipping it would fake a
/// clean bench run).
fn reject(message: String) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

/// Parses the `--tenants` grammar (see [`usage`]) into a [`MultiTenantSpec`].
/// Tenant ids are assigned by position (1-based).
fn parse_tenants(spec: &str) -> MultiTenantSpec {
    let mut mix = MultiTenantSpec::new();
    for (index, entry) in spec.split(';').enumerate() {
        let entry = entry.trim();
        if entry.is_empty() {
            reject(format!("--tenants: empty tenant entry at position {index}"));
        }
        let (name, body) = entry
            .split_once(':')
            .unwrap_or_else(|| reject(format!("--tenants: '{entry}' has no NAME: prefix")));
        let name = name.trim();
        // Names are echoed verbatim into the JSON baseline, so keep them to
        // characters that need no escaping anywhere.
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            reject(format!(
                "--tenants: tenant name '{name}' must be non-empty [A-Za-z0-9_-]"
            ));
        }
        let mut qps: Option<f64> = None;
        let mut queries = 600usize;
        let mut slo_ms: Option<f64> = None;
        let mut weight = 1u32;
        let mut repeat = 0.0f64;
        let mut option_mix: Vec<(usize, usize)> = vec![(10, 8)];
        fn bad<T>(kv: &str, what: &str) -> T {
            reject(format!("--tenants: {kv}: {what}"))
        }
        for kv in body.split(',') {
            let (key, value) = kv
                .split_once('=')
                .unwrap_or_else(|| reject(format!("--tenants: '{kv}' is not key=value")));
            match key.trim() {
                "qps" => qps = Some(value.parse().unwrap_or_else(|_| bad(kv, "not a number"))),
                "queries" => queries = value.parse().unwrap_or_else(|_| bad(kv, "not an integer")),
                "slo-ms" => slo_ms = Some(value.parse().unwrap_or_else(|_| bad(kv, "not a number"))),
                "weight" => weight = value.parse().unwrap_or_else(|_| bad(kv, "not an integer")),
                "repeat" => repeat = value.parse().unwrap_or_else(|_| bad(kv, "not a number")),
                "mix" => {
                    option_mix = value
                        .split('+')
                        .map(|tier| {
                            let (k, nprobe) = tier
                                .split_once('x')
                                .unwrap_or_else(|| bad(kv, "mix tiers are KxN"));
                            (
                                k.parse().unwrap_or_else(|_| bad(kv, "k not an integer")),
                                nprobe
                                    .parse()
                                    .unwrap_or_else(|_| bad(kv, "nprobe not an integer")),
                            )
                        })
                        .collect();
                }
                other => reject(format!(
                    "--tenants: unknown key '{other}' (known: qps, queries, slo-ms, weight, repeat, mix)"
                )),
            }
        }
        let qps =
            qps.unwrap_or_else(|| reject(format!("--tenants: tenant '{name}' needs qps=")));
        if !(qps > 0.0 && qps.is_finite()) {
            reject(format!("--tenants: tenant '{name}': qps must be positive"));
        }
        if queries == 0 {
            reject(format!("--tenants: tenant '{name}': queries must be at least 1"));
        }
        if weight == 0 {
            reject(format!("--tenants: tenant '{name}': weight must be at least 1"));
        }
        if !(0.0..=1.0).contains(&repeat) {
            reject(format!("--tenants: tenant '{name}': repeat must be in [0, 1]"));
        }
        if option_mix.iter().any(|&(k, nprobe)| k == 0 || nprobe == 0) {
            reject(format!("--tenants: tenant '{name}': mix tiers need k and nprobe >= 1"));
        }
        let mut stream = StreamSpec::new(queries, qps).with_repeat_fraction(repeat);
        if let Some(ms) = slo_ms {
            if !(ms > 0.0 && ms.is_finite()) {
                reject(format!("--tenants: tenant '{name}': slo-ms must be positive"));
            }
            stream = stream.with_slo_p99(ms / 1e3);
        }
        mix = mix.with_tenant(
            TenantSpec::new(TenantId(index as u32 + 1), stream)
                .with_name(name)
                .with_weight(weight)
                .with_option_mix(option_mix),
        );
    }
    mix
}

/// The `--mutations` rates, parsed. `None` means `--mutations none`.
#[derive(Debug, Clone, Copy)]
struct LiveMutationArgs {
    upsert_qps: f64,
    delete_qps: f64,
    seed: u64,
}

/// Parses the `--mutations` grammar: `upsert=QPS,delete=QPS[,seed=N]` (any
/// subset of keys, rates default to 0, seed to the committed default) or the
/// literal `none`. Malformed specs exit 2 — silently serving a frozen index
/// when live rows were asked for would fake a clean bench run.
fn parse_mutations(spec: &str) -> Option<LiveMutationArgs> {
    if spec.trim() == "none" {
        return None;
    }
    let mut out = LiveMutationArgs {
        upsert_qps: 0.0,
        delete_qps: 0.0,
        seed: 77,
    };
    for kv in spec.split(',') {
        let kv = kv.trim();
        let (key, value) = kv.split_once('=').unwrap_or_else(|| {
            reject(format!(
                "--mutations: '{kv}' is not key=value \
                 (grammar: upsert=QPS,delete=QPS[,seed=N], or 'none')"
            ))
        });
        fn bad<T>(kv: &str, what: &str) -> T {
            reject(format!("--mutations: {kv}: {what}"))
        }
        match key.trim() {
            "upsert" => {
                out.upsert_qps = value.parse().unwrap_or_else(|_| bad(kv, "not a number"));
            }
            "delete" => {
                out.delete_qps = value.parse().unwrap_or_else(|_| bad(kv, "not a number"));
            }
            "seed" => out.seed = value.parse().unwrap_or_else(|_| bad(kv, "not an integer")),
            other => reject(format!(
                "--mutations: unknown key '{other}' (known: upsert, delete, seed)"
            )),
        }
    }
    for (name, rate) in [("upsert", out.upsert_qps), ("delete", out.delete_qps)] {
        if !(rate >= 0.0 && rate.is_finite()) {
            reject(format!("--mutations: {name} rate must be non-negative and finite"));
        }
    }
    if out.upsert_qps == 0.0 && out.delete_qps == 0.0 {
        reject(
            "--mutations: at least one rate must be positive (use 'none' to disable)".to_string(),
        );
    }
    Some(out)
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--queries" => args.queries = value("--queries").parse().expect("--queries: integer"),
            "--qps" => args.qps = value("--qps").parse().expect("--qps: number"),
            "--repeat" => args.repeat = value("--repeat").parse().expect("--repeat: number"),
            "--slo-ms" => args.slo_ms = value("--slo-ms").parse().expect("--slo-ms: number"),
            "--max-chunk" => {
                args.max_chunk = value("--max-chunk").parse().expect("--max-chunk: integer");
                if args.max_chunk == 0 {
                    reject("--max-chunk must be at least 1".to_string());
                }
            }
            "--hosts" => {
                args.hosts = value("--hosts").parse().expect("--hosts: integer");
                // Each host needs a meaningful share of the fixed tiny-scale
                // fixture (DPUs, IVF lists, training vectors).
                if !(1..=16).contains(&args.hosts) {
                    reject(format!(
                        "--hosts {} out of range (the tiny-scale fixture supports 1..=16 hosts)",
                        args.hosts
                    ));
                }
            }
            "--engines" => {
                args.engines = value("--engines")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if args.engines.is_empty() {
                    reject("--engines: empty engine list".to_string());
                }
                for name in &args.engines {
                    if !KNOWN_ENGINES.contains(&name.as_str()) {
                        reject(format!(
                            "unknown engine '{name}' (known engines: {})",
                            KNOWN_ENGINES.join(", ")
                        ));
                    }
                }
            }
            "--policy" => {
                args.policies = match value("--policy").as_str() {
                    "fixed" => vec![Policy::Fixed],
                    "adaptive" => vec![Policy::Adaptive],
                    "both" => vec![Policy::Fixed, Policy::Adaptive],
                    other => reject(format!(
                        "unknown policy '{other}' (known policies: fixed, adaptive, both)"
                    )),
                };
            }
            "--tenants" => {
                args.tenants = value("--tenants");
                args.tenants_overridden = true;
                // Parse eagerly so a malformed spec exits 2 before any replay.
                let _ = parse_tenants(&args.tenants);
            }
            "--runtime" => {
                args.runtime = match value("--runtime").as_str() {
                    "replay" => RuntimeKind::Replay,
                    "threaded" => RuntimeKind::Threaded,
                    "twin" => RuntimeKind::Twin,
                    other => reject(format!(
                        "unknown runtime '{other}' (known runtimes: replay, threaded, twin)"
                    )),
                };
            }
            "--workers" => {
                args.workers = value("--workers")
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| reject(format!("--workers: '{s}' is not an integer")))
                    })
                    .collect();
                if args.workers.is_empty()
                    || args.workers.iter().any(|&w| w == 0 || w > 32)
                {
                    reject("--workers: need a comma list of counts in 1..=32".to_string());
                }
            }
            "--sweep-qps" => {
                args.sweep_qps = value("--sweep-qps")
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| reject(format!("--sweep-qps: '{s}' is not a number")))
                    })
                    .collect();
                if args.sweep_qps.is_empty()
                    || args.sweep_qps.iter().any(|&q: &f64| !(q > 0.0 && q.is_finite()))
                {
                    reject("--sweep-qps: need a comma list of positive rates".to_string());
                }
            }
            "--work-scale" => {
                args.work_scale = value("--work-scale").parse().expect("--work-scale: number");
                if !(args.work_scale >= 1.0 && args.work_scale.is_finite()) {
                    reject("--work-scale must be at least 1".to_string());
                }
            }
            "--queue" => {
                args.queue = Some(value("--queue").parse().expect("--queue: integer"));
                if args.queue == Some(0) {
                    reject("--queue must be at least 1".to_string());
                }
            }
            "--answers" => args.answers = Some(value("--answers")),
            "--replicas" => {
                args.replicas = value("--replicas")
                    .parse()
                    .unwrap_or_else(|_| reject("--replicas: not an integer".to_string()));
                if args.replicas == 0 {
                    reject("--replicas must be at least 1".to_string());
                }
                if args.replicas > FAILOVER_HOSTS {
                    reject(format!(
                        "--replicas {} exceeds the failover deployment's {FAILOVER_HOSTS} hosts; \
                         refusing to co-locate replicas on one failure domain",
                        args.replicas
                    ));
                }
            }
            "--fault" => {
                args.fault = value("--fault");
                // Parse eagerly so a malformed schedule exits 2 before any
                // replay.
                if let Err(err) = FaultSchedule::parse(&args.fault) {
                    reject(format!("--fault: {err}"));
                }
            }
            "--hedge-ms" => {
                args.hedge_ms = value("--hedge-ms")
                    .parse()
                    .unwrap_or_else(|_| reject("--hedge-ms: not a number".to_string()));
                if !(args.hedge_ms > 0.0 && args.hedge_ms.is_finite()) {
                    reject("--hedge-ms must be a positive number".to_string());
                }
            }
            "--mutations" => {
                args.mutations = value("--mutations");
                // Parse eagerly so a malformed spec exits 2 before any replay.
                let _ = parse_mutations(&args.mutations);
            }
            "--json" => args.json = Some(value("--json")),
            "--help" | "-h" => usage(),
            other => reject(format!("unknown flag {other} (try --help)")),
        }
    }
    args
}

/// The per-query options mix: two nprobe tiers at k=10 plus a k=20 tier
/// carrying a latency budget (exercises mixed-options batching end to end).
fn options_of(index: usize) -> QueryOptions {
    match index % 3 {
        0 => QueryOptions::new(10, 8),
        1 => QueryOptions::new(10, 4),
        _ => QueryOptions::new(20, 8).with_latency_budget(0.05),
    }
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "0.0".to_string()
    }
}

fn tenant_json(t: &upanns_serve::TenantReport) -> String {
    format!(
        concat!(
            "        {{\n",
            "          \"tenant\": \"{}\",\n",
            "          \"weight\": {},\n",
            "          \"slo_ms\": {},\n",
            "          \"completed\": {},\n",
            "          \"shed\": {},\n",
            "          \"p50_ms\": {},\n",
            "          \"p99_ms\": {},\n",
            "          \"slo_miss_fraction\": {},\n",
            "          \"meets_slo\": {},\n",
            "          \"final_max_batch\": {},\n",
            "          \"final_max_delay_ms\": {}\n",
            "        }}"
        ),
        t.name,
        t.weight,
        t.slo_p99_s.map_or_else(|| "null".to_string(), |s| json_num(s * 1e3)),
        t.completed,
        t.shed,
        json_num(t.p50() * 1e3),
        json_num(t.p99() * 1e3),
        json_num(t.slo_miss_fraction()),
        t.meets_slo(),
        t.final_batcher.max_batch,
        json_num(t.final_batcher.max_delay_s * 1e3),
    )
}

/// The recovery envelope as a JSON object (`null` for rows without one —
/// every workload except `failover`). `recovery_s` is `null` when attainment
/// never recovered inside the observed timeline.
fn envelope_json(env: Option<&RecoveryEnvelope>) -> String {
    match env {
        None => "null".to_string(),
        Some(e) => format!(
            "{{ \"bucket_s\": {}, \"t_down\": {}, \"baseline_attainment\": {}, \
             \"max_dip\": {}, \"dip_at\": {}, \"recovery_s\": {}, \"recovered\": {} }}",
            json_num(e.bucket_s),
            json_num(e.t_down),
            json_num(e.baseline_attainment),
            json_num(e.max_dip),
            json_num(e.dip_at),
            if e.recovery_s.is_finite() {
                json_num(e.recovery_s)
            } else {
                "null".to_string()
            },
            e.recovered,
        ),
    }
}

fn report_json(
    r: &ServiceReport,
    workload: &str,
    env: Option<&RecoveryEnvelope>,
    live: Option<&LiveSummary>,
) -> String {
    let tenants: Vec<String> = r.tenants.iter().map(tenant_json).collect();
    format!(
        concat!(
            "    {{\n",
            "      \"name\": \"{}\",\n",
            "      \"workload\": \"{}\",\n",
            "      \"policy\": \"{}\",\n",
            "      \"sustained_qps\": {},\n",
            "      \"p50_ms\": {},\n",
            "      \"p99_ms\": {},\n",
            "      \"mean_ms\": {},\n",
            "      \"slo_miss_fraction\": {},\n",
            "      \"meets_slo\": {},\n",
            "      \"all_tenants_meet_slo\": {},\n",
            "      \"completed\": {},\n",
            "      \"shed\": {},\n",
            "      \"cache_hit_rate\": {},\n",
            "      \"cache_invalidated\": {},\n",
            "      \"batches\": {},\n",
            "      \"mean_batch_size\": {},\n",
            "      \"dispatched_chunks\": {},\n",
            "      \"mean_chunk_size\": {},\n",
            "      \"final_max_batch\": {},\n",
            "      \"final_max_delay_ms\": {},\n",
            "      \"controller_adjustments\": {},\n",
            "      \"engine_busy_s\": {},\n",
            "      \"degraded\": {},\n",
            "      \"hedged\": {},\n",
            "      \"redispatched\": {},\n",
            "      \"scale_events\": {},\n",
            "      \"migration_s\": {},\n",
            "      \"envelope\": {},\n",
            "      \"live\": {},\n",
            "      \"tenants\": [\n{}\n      ]\n",
            "    }}"
        ),
        r.engine,
        workload,
        r.policy,
        json_num(r.sustained_qps()),
        json_num(r.p50() * 1e3),
        json_num(r.p99() * 1e3),
        json_num(r.mean_latency() * 1e3),
        json_num(r.slo_miss_fraction()),
        r.meets_slo(),
        r.all_tenants_meet_slo(),
        r.completed,
        r.shed,
        json_num(r.cache_hit_rate()),
        r.cache_invalidated,
        r.batches(),
        json_num(r.mean_batch_size()),
        r.dispatched_chunks,
        json_num(r.mean_chunk_size()),
        r.final_batcher.max_batch,
        json_num(r.final_batcher.max_delay_s * 1e3),
        r.controller_adjustments,
        json_num(r.engine_busy_s),
        r.degraded,
        r.hedged,
        r.redispatched,
        r.scale_events,
        json_num(r.migration_s),
        envelope_json(env),
        live_json(live),
        tenants.join(",\n"),
    )
}

/// The options closure of [`SearchService::replay_planned`], shared with the
/// threaded pipeline so both runtimes ask the exact same questions on a
/// multi-tenant stream.
fn planned_options(stream: &QueryStream, i: usize) -> QueryOptions {
    let (k, nprobe) = stream
        .option_plan
        .get(i)
        .copied()
        .unwrap_or_else(|| (QueryOptions::default().k, QueryOptions::default().nprobe));
    QueryOptions::new(k, nprobe).with_tenant(stream.tenant(i))
}

/// Serializes answer maps as `workload TAB index TAB id,id,...` lines —
/// the byte format CI diffs between `--runtime replay` and `--runtime twin`.
/// Only neighbor ids appear: the twin contract is about *which* answers come
/// back, and ids are byte-stable across platforms where float formatting
/// might not be.
fn write_answers(
    path: &str,
    single: &[Vec<Neighbor>],
    multi: &[Vec<Neighbor>],
    failover: &[Vec<Neighbor>],
    live: &[Vec<Neighbor>],
) {
    let mut out = String::new();
    for (label, results) in [
        ("single", single),
        ("multi", multi),
        ("failover", failover),
        ("live", live),
    ] {
        for (i, neighbors) in results.iter().enumerate() {
            out.push_str(label);
            out.push('\t');
            out.push_str(&i.to_string());
            out.push('\t');
            let ids: Vec<String> = neighbors.iter().map(|n| n.id.to_string()).collect();
            out.push_str(&ids.join(","));
            out.push('\n');
        }
    }
    std::fs::write(path, out).expect("write answers file");
    eprintln!("wrote {path}");
}

/// One recall-vs-staleness bucket: queries whose serving snapshot trailed
/// the exact corpus by a mutation lag inside the bucket's range.
struct StalenessBucket {
    label: &'static str,
    queries: usize,
    mean_recall: f64,
}

/// The post-replay audit of a live-mutation row (see the module docs).
struct LiveSummary {
    final_epoch: u64,
    snapshots: usize,
    compactions: usize,
    mutation_events: usize,
    /// Served answers that differ from re-executing the query at its own
    /// arrival on the same engine. The consistency contract says 0.
    stale_served: usize,
    /// Completed queries whose arrival fell inside a compaction window.
    answered_in_window: usize,
    p99_steady_ms: f64,
    p99_compaction_ms: f64,
    buckets: Vec<StalenessBucket>,
}

/// Nearest-rank p99 over unsorted millisecond latencies (0 when empty).
fn p99_ms(latencies_ms: &mut [f64]) -> f64 {
    if latencies_ms.is_empty() {
        return 0.0;
    }
    latencies_ms.sort_by(f64::total_cmp);
    let rank = ((0.99 * latencies_ms.len() as f64).ceil() as usize).max(1) - 1;
    latencies_ms[rank.min(latencies_ms.len() - 1)]
}

/// Audits a live-mutation replay after the fact:
///
/// - **stale_served** — every completed answer is re-executed as a
///   single-query request at its own arrival time on `oracle` (the engine
///   that served the replay, timeline still installed). Answers are a pure
///   function of (query, arrival), so any difference means a stale cache
///   entry or a wrong snapshot was served. Must be 0.
/// - **p99 split** — completed latencies split by whether the arrival fell
///   inside a compaction window (the stall the plan charges).
/// - **recall-vs-staleness** — a [`MutableIvf`] replays the mutation events
///   alongside the arrivals, so each query's served ids are scored against
///   an exact search of the *up-to-the-second* corpus; buckets group by how
///   many mutations the serving snapshot trailed by.
fn live_summary<E: AnnEngine, F: Fn(usize) -> QueryOptions>(
    report: &ServiceReport,
    oracle: &mut E,
    base: &IvfPqIndex,
    stream: &QueryStream,
    options: F,
    events: &MutationStream,
    plan: &LiveIndexPlan,
) -> LiveSummary {
    let mut steady_ms: Vec<f64> = Vec::new();
    let mut window_ms: Vec<f64> = Vec::new();
    for &(arrival, latency) in &report.outcomes {
        let Some(latency) = latency else { continue };
        if plan.timeline.windows().iter().any(|w| w.contains(arrival)) {
            window_ms.push(latency * 1e3);
        } else {
            steady_ms.push(latency * 1e3);
        }
    }
    let answered_in_window = window_ms.len();

    // The exact-corpus twin of the timeline: same base, same events, but
    // refreshed at *every* event instead of every LIVE_REFRESH_S.
    let mut exact = MutableIvf::new(base);
    let mut next_event = 0usize;
    let mut stale_served = 0usize;
    let mut buckets: Vec<(usize, f64)> = vec![(0, 0.0); STALENESS_BUCKETS.len()];
    for (i, &arrival) in stream.arrivals.iter().enumerate() {
        while next_event < events.events.len() && events.events[next_event].at <= arrival {
            match &events.events[next_event].op {
                MutationOp::Upsert { id, vector } => {
                    exact.upsert(vector, *id);
                }
                MutationOp::Delete { id } => {
                    exact.delete(*id);
                }
            }
            next_event += 1;
        }
        let served = &report.results[i];
        if served.is_empty() {
            continue; // shed
        }
        let opt = options(i);
        let query = stream.batch.queries.vector(i);

        let mut one = Dataset::with_capacity(stream.batch.queries.dim(), 1);
        one.push(query);
        let expect = oracle
            .execute(&SearchRequest::new(one, vec![opt]).with_at(arrival))
            .results
            .swap_remove(0);
        if served.len() != expect.len()
            || served.iter().zip(&expect).any(|(a, b)| a.id != b.id)
        {
            stale_served += 1;
        }

        let exact_top = exact.snapshot().search(query, opt.nprobe, opt.k);
        let exact_ids: std::collections::HashSet<u64> =
            exact_top.iter().map(|n| n.id).collect();
        let recall = if exact_ids.is_empty() {
            1.0
        } else {
            served.iter().filter(|n| exact_ids.contains(&n.id)).count() as f64
                / exact_ids.len() as f64
        };
        let lag = exact.epoch() - plan.timeline.epoch_at(arrival);
        let bucket = STALENESS_BUCKETS
            .iter()
            .position(|&(_, lo, hi)| lo <= lag && lag <= hi)
            .expect("staleness buckets cover all lags");
        buckets[bucket].0 += 1;
        buckets[bucket].1 += recall;
    }

    LiveSummary {
        final_epoch: plan.final_epoch,
        snapshots: plan.timeline.entries().len(),
        compactions: plan.compactions.len(),
        mutation_events: events.len(),
        stale_served,
        answered_in_window,
        p99_steady_ms: p99_ms(&mut steady_ms),
        p99_compaction_ms: p99_ms(&mut window_ms),
        buckets: STALENESS_BUCKETS
            .iter()
            .zip(buckets)
            .map(|(&(label, _, _), (queries, recall_sum))| StalenessBucket {
                label,
                queries,
                mean_recall: if queries == 0 { 1.0 } else { recall_sum / queries as f64 },
            })
            .collect(),
    }
}

/// The live-mutation audit as a JSON object (`null` for frozen-index rows).
fn live_json(live: Option<&LiveSummary>) -> String {
    match live {
        None => "null".to_string(),
        Some(s) => {
            let buckets: Vec<String> = s
                .buckets
                .iter()
                .map(|b| {
                    format!(
                        "{{ \"lag\": \"{}\", \"queries\": {}, \"mean_recall\": {} }}",
                        b.label,
                        b.queries,
                        json_num(b.mean_recall)
                    )
                })
                .collect();
            format!(
                "{{ \"final_epoch\": {}, \"snapshots\": {}, \"compactions\": {}, \
                 \"mutation_events\": {}, \"stale_served\": {}, \"answered_in_window\": {}, \
                 \"p99_steady_ms\": {}, \"p99_compaction_ms\": {}, \
                 \"recall_vs_staleness\": [{}] }}",
                s.final_epoch,
                s.snapshots,
                s.compactions,
                s.mutation_events,
                s.stale_served,
                s.answered_in_window,
                json_num(s.p99_steady_ms),
                json_num(s.p99_compaction_ms),
                buckets.join(", "),
            )
        }
    }
}

/// One threaded-sweep row as JSON (schema `upanns-runtime-bench-v3`).
fn runtime_row_json(r: &RuntimeReport, workload: &str, offered_qps: f64, num_queries: usize) -> String {
    let tenants: Vec<String> = r
        .tenants
        .iter()
        .map(|t| {
            format!(
                concat!(
                    "        {{\n",
                    "          \"tenant\": \"{}\",\n",
                    "          \"slo_ms\": {},\n",
                    "          \"completed\": {},\n",
                    "          \"shed\": {},\n",
                    "          \"p50_ms\": {},\n",
                    "          \"p99_ms\": {},\n",
                    "          \"slo_miss_fraction\": {},\n",
                    "          \"meets_slo\": {}\n",
                    "        }}"
                ),
                t.name,
                t.slo_p99_s.map_or_else(|| "null".to_string(), |s| json_num(s * 1e3)),
                t.completed,
                t.shed,
                json_num(t.p50() * 1e3),
                json_num(t.p99() * 1e3),
                json_num(t.slo_miss_fraction()),
                t.meets_slo(),
            )
        })
        .collect();
    let emulated_utilization = if r.makespan_s > 0.0 && r.workers > 0 {
        r.busy_modeled_s / (r.makespan_s * r.workers as f64)
    } else {
        0.0
    };
    format!(
        concat!(
            "    {{\n",
            "      \"engine\": \"{}\",\n",
            "      \"workload\": \"{}\",\n",
            "      \"mode\": \"{}\",\n",
            "      \"policy\": \"{}\",\n",
            "      \"workers\": {},\n",
            "      \"offered_qps\": {},\n",
            "      \"num_queries\": {},\n",
            "      \"sustained_qps\": {},\n",
            "      \"p50_ms\": {},\n",
            "      \"p99_ms\": {},\n",
            "      \"mean_ms\": {},\n",
            "      \"completed\": {},\n",
            "      \"shed\": {},\n",
            "      \"lost\": {},\n",
            "      \"duplicated\": {},\n",
            "      \"degraded\": {},\n",
            "      \"hedged\": {},\n",
            "      \"redispatched\": {},\n",
            "      \"cache_hit_rate\": {},\n",
            "      \"cache_invalidated\": {},\n",
            "      \"dispatched_chunks\": {},\n",
            "      \"busy_modeled_s\": {},\n",
            "      \"makespan_s\": {},\n",
            "      \"emulated_utilization\": {},\n",
            "      \"tenants\": [\n{}\n      ]\n",
            "    }}"
        ),
        r.engine,
        workload,
        r.mode,
        r.policy,
        r.workers,
        json_num(offered_qps),
        num_queries,
        json_num(r.sustained_qps()),
        json_num(r.p50() * 1e3),
        json_num(r.p99() * 1e3),
        json_num(r.mean_latency() * 1e3),
        r.completed,
        r.shed,
        r.lost,
        r.duplicated,
        r.degraded,
        r.hedged,
        r.redispatched,
        json_num(r.cache_hit_rate()),
        r.cache_invalidated,
        r.dispatched_chunks,
        json_num(r.busy_modeled_s),
        json_num(r.makespan_s),
        json_num(emulated_utilization),
        tenants.join(",\n"),
    )
}

/// Prints one threaded/twin run as a markdown table row.
fn print_runtime_row(r: &RuntimeReport, workload: &str, offered_qps: f64) {
    println!(
        "| {} | {} | {} | {} | {:.1} | {:.1} | {:.3} | {:.3} | {} | {} | {} | {} | {:.0}% |",
        r.engine,
        workload,
        r.mode,
        r.workers,
        offered_qps,
        r.sustained_qps(),
        r.p50() * 1e3,
        r.p99() * 1e3,
        r.completed,
        r.shed,
        r.lost,
        r.duplicated,
        r.cache_hit_rate() * 100.0,
    );
}

/// Replays both answer streams (single-tenant, then the multi-tenant
/// scenario) on one engine and returns the two answer maps. The queue is
/// widened so nothing is shed — the answer map must be total on both sides
/// of the twin diff.
fn replay_answers<E: AnnEngine>(
    engine: E,
    stream: &QueryStream,
    tstream: &QueryStream,
    config: ServiceConfig,
) -> (Vec<Vec<Neighbor>>, Vec<Vec<Neighbor>>) {
    let mut service = SearchService::new(engine, config);
    let single = service.replay(stream, options_of).results;
    let mut service = SearchService::new(service.into_engine(), config);
    let multi = service.replay_planned(tstream).results;
    (single, multi)
}

/// The twin side of [`replay_answers`]: the same two streams through the
/// threaded pipeline in logical-trace mode, `workers` engine instances each.
fn twin_answers<E: AnnEngine + Send>(
    engines_single: Vec<E>,
    engines_multi: Vec<E>,
    stream: &QueryStream,
    tstream: &QueryStream,
    config: ServiceConfig,
) -> (RuntimeReport, RuntimeReport) {
    let single = run_pipeline(
        engines_single,
        stream,
        options_of,
        Box::new(FixedPolicy(config.batcher)),
        RuntimeConfig::logical(config),
    );
    let multi = run_pipeline(
        engines_multi,
        tstream,
        |i| planned_options(tstream, i),
        Box::new(FixedPolicy(config.batcher)),
        RuntimeConfig::logical(config),
    );
    (single, multi)
}

fn main() {
    let args = parse_args();
    let work_scale = (MODELED_N / DATASET_N as f64).max(1.0);
    let slo_s = args.slo_ms / 1e3;
    assert!(slo_s > 0.0, "--slo-ms must be positive");
    assert!(args.hosts >= 1, "--hosts must be at least 1");

    eprintln!(
        "building fixture: n={DATASET_N}, nlist={NLIST}, dpus={DPUS}, \
         stream of {} queries at {} qps (repeat fraction {}, p99 SLO {} ms)",
        args.queries, args.qps, args.repeat, args.slo_ms
    );
    let dataset = SyntheticSpec::sift_like(DATASET_N)
        .with_clusters(16)
        .with_seed(7)
        .generate_with_meta();
    let index = IvfPqIndex::train(
        &dataset.vectors,
        &IvfPqParams::new(NLIST, PQ_M).with_train_size(2_400),
        5,
    );
    let history = WorkloadSpec::new(600).with_seed(8).generate(&dataset).queries;
    let stream = StreamSpec::new(args.queries, args.qps)
        .with_repeat_fraction(args.repeat)
        .with_slo_p99(slo_s)
        .generate(&dataset);

    // The fixed policy's close conditions: a low-latency batching window.
    // The adaptive controller starts from the same point and widens it only
    // while the observed p99 holds the SLO.
    let fixed_batcher = BatchFormerConfig {
        max_batch: 256,
        max_delay_s: 25e-3,
    };
    let service_config = ServiceConfig {
        queue_capacity: args.queue.unwrap_or(512),
        batcher: fixed_batcher,
        cache_capacity: 512,
        cache_lookup_s: 2e-6,
        slo_p99_s: None, // the stream's annotation carries the target
        // The single-tenant sweep keeps whole-batch close-order dispatch:
        // with nobody to isolate, chunking only sheds batch amortization.
        max_chunk: None,
    };

    // The live-mutation plan: the committed mutation stream folded into an
    // epoch-stamped snapshot timeline, shared by every runtime path below.
    // Only the UpANNS engine serves it (the single-host tiers install
    // timelines; the multihost tiers decline — documented residue).
    let live_args = parse_mutations(&args.mutations);
    let live_on = live_args.is_some() && args.engines.iter().any(|e| e == "upanns");
    if live_args.is_some() && !live_on {
        eprintln!("note: --mutations set but upanns is not selected; skipping live rows");
    }
    let (live_events, live_plan) = if live_on {
        let la = live_args.expect("gated on is_some");
        let events = MutationSpec::new(stream.duration())
            .with_tenant(TenantId::DEFAULT, la.upsert_qps, la.delete_qps)
            .with_seed(la.seed)
            .generate(&dataset, index.ntotal());
        let plan = plan_live_index(&index, &events, LIVE_REFRESH_S, &bench_compaction_policy());
        eprintln!(
            "live-mutation plan: {} events -> {} snapshots, {} compaction(s), final epoch {}",
            events.len(),
            plan.timeline.entries().len(),
            plan.compactions.len(),
            plan.final_epoch
        );
        (Some(events), Some(plan))
    } else {
        (None, None)
    };

    // Multihost shards: one IVFPQ index per host over a contiguous slice of
    // the corpus, with globally unique ids; each stored vector keeps the same
    // modeled scale, so the deployment models the same corpus.
    let shard_indexes: Vec<IvfPqIndex> = if args.engines.iter().any(|e| e == "multihost") {
        shard_ranges(dataset.vectors.len(), args.hosts)
            .iter()
            .map(|r| {
                let rows: Vec<usize> = r.clone().collect();
                let shard = dataset.vectors.gather(&rows);
                let nlist = (NLIST / args.hosts).max(16);
                let mut ix = IvfPqIndex::train_empty(
                    &shard,
                    &IvfPqParams::new(nlist, PQ_M).with_train_size(2_400 / args.hosts),
                    5,
                );
                ix.add(&shard, r.start as u64);
                ix
            })
            .collect()
    } else {
        Vec::new()
    };

    fn build_pim(
        index: &IvfPqIndex,
        config: UpAnnsConfig,
        dpus: usize,
        work_scale: f64,
        history: &annkit::vector::Dataset,
    ) -> UpAnnsEngine {
        UpAnnsBuilder::new(index)
            .with_config(config.with_work_scale(work_scale))
            .with_pim_config(PimConfig::with_dpus(dpus))
            .with_history(history, 8)
            .with_batch_capacity(BatchCapacity {
                batch_size: 64,
                nprobe: 8,
                max_k: 20,
            })
            .build()
    }
    let build_multihost = |ws: f64| {
        let engines: Vec<UpAnnsEngine> = shard_indexes
            .iter()
            .map(|ix| build_pim(ix, UpAnnsConfig::upanns(), DPUS / args.hosts, ws, &history))
            .collect();
        MultiHostUpAnns::new(engines, InterconnectModel::default())
    };

    // The failover scenario's fixed-shape replicated deployment (see the
    // module docs): its own shard set, stream and outage schedule, decoupled
    // from --hosts so the committed recovery envelope stays comparable.
    let failover_on = args.engines.iter().any(|e| e == "multihost");
    let faults = FaultSchedule::parse(&args.fault)
        .unwrap_or_else(|err| reject(format!("--fault: {err}")));
    let failover_indexes: Vec<IvfPqIndex> = if failover_on {
        shard_ranges(dataset.vectors.len(), FAILOVER_SHARDS)
            .iter()
            .map(|r| {
                let rows: Vec<usize> = r.clone().collect();
                let shard = dataset.vectors.gather(&rows);
                let nlist = (NLIST / FAILOVER_SHARDS).max(16);
                let mut ix = IvfPqIndex::train_empty(
                    &shard,
                    &IvfPqParams::new(nlist, PQ_M).with_train_size(2_400 / FAILOVER_SHARDS),
                    5,
                );
                ix.add(&shard, r.start as u64);
                ix
            })
            .collect()
    } else {
        Vec::new()
    };
    let failover_stream = StreamSpec::new(FAILOVER_QUERIES, FAILOVER_QPS)
        .with_repeat_fraction(args.repeat)
        .with_slo_p99(FAILOVER_SLO_MS / 1e3)
        .generate(&dataset);
    let build_failover = |ws: f64| {
        let engines: Vec<UpAnnsEngine> = failover_indexes
            .iter()
            .map(|ix| build_pim(ix, UpAnnsConfig::upanns(), DPUS / FAILOVER_SHARDS, ws, &history))
            .collect();
        match ReplicatedMultiHost::new(
            engines,
            FAILOVER_HOSTS,
            args.replicas,
            InterconnectModel::default(),
        ) {
            Ok(engine) => engine
                .with_faults(faults.clone())
                .with_hedge_budget(args.hedge_ms / 1e3),
            Err(err) => reject(format!("--replicas: {err}")),
        }
    };

    // ------------------------------------------------------------------
    // Threaded and twin runtimes (and the answer-map writer) exit early;
    // everything below this block is the replay path, byte-identical to
    // the committed baseline under the default flags.
    // ------------------------------------------------------------------

    // The threaded/twin engine: the UpANNS PIM engine when selected (the
    // paper's engine is what the scaling sweep is about), else the first
    // engine the user listed.
    let chosen_engine: &str = if args.engines.iter().any(|e| e == "upanns") {
        "upanns"
    } else {
        args.engines[0].as_str()
    };

    if args.runtime == RuntimeKind::Twin
        || (args.runtime == RuntimeKind::Replay && args.answers.is_some())
    {
        let tmix = parse_tenants(&args.tenants);
        let tstream = tmix.generate(&dataset);
        // The answer map must be total: widen the waiting room past both
        // streams so neither side of the twin diff sheds anything.
        let answers_config = ServiceConfig {
            queue_capacity: service_config
                .queue_capacity
                .max(stream.len())
                .max(tstream.len())
                .max(failover_stream.len()),
            ..service_config
        };
        let workers = args.workers[0];
        macro_rules! answer_maps {
            ($build:expr) => {{
                if args.runtime == RuntimeKind::Twin {
                    let singles: Vec<_> = (0..workers).map(|_| $build).collect();
                    let multis: Vec<_> = (0..workers).map(|_| $build).collect();
                    eprintln!(
                        "twin: {chosen_engine} logical-trace pipeline, {workers} worker(s), \
                         {} + {} queries ...",
                        stream.len(),
                        tstream.len()
                    );
                    let (s, m) = twin_answers(singles, multis, &stream, &tstream, answers_config);
                    assert!(
                        s.is_conserving() && m.is_conserving(),
                        "twin run lost or duplicated queries"
                    );
                    assert_eq!(s.shed + m.shed, 0, "twin runs shed nothing");
                    (s.results, m.results)
                } else {
                    eprintln!(
                        "replay: {chosen_engine} answer maps, {} + {} queries ...",
                        stream.len(),
                        tstream.len()
                    );
                    replay_answers($build, &stream, &tstream, answers_config)
                }
            }};
        }
        let (single, multi) = match chosen_engine {
            "cpu" => answer_maps!(CpuFaissEngine::new(&index).with_work_scale(work_scale)),
            "gpu" => answer_maps!(GpuFaissEngine::new(&index).with_work_scale(work_scale)),
            "pim-naive" => {
                answer_maps!(build_pim(&index, UpAnnsConfig::pim_naive(), DPUS, work_scale, &history))
            }
            "upanns" => {
                answer_maps!(build_pim(&index, UpAnnsConfig::upanns(), DPUS, work_scale, &history))
            }
            "multihost" => answer_maps!(build_multihost(work_scale)),
            other => unreachable!("engine '{other}' escaped --engines validation"),
        };
        // The failover section: the replicated deployment under the fault
        // schedule, on both sides of the diff — fault membership is a pure
        // function of the batch close time, so the maps must stay
        // byte-identical even while hosts die and recover.
        let failover = if failover_on {
            // Same fixed chunk cap as the scenario rows, on both sides of
            // the diff.
            let failover_config = ServiceConfig {
                max_chunk: Some(FAILOVER_MAX_CHUNK),
                ..answers_config
            };
            if args.runtime == RuntimeKind::Twin {
                let engines: Vec<_> = (0..workers).map(|_| build_failover(work_scale)).collect();
                eprintln!(
                    "twin: failover logical-trace pipeline, {workers} worker(s), \
                     {} queries under fault schedule {:?} ...",
                    failover_stream.len(),
                    args.fault
                );
                let report = run_pipeline(
                    engines,
                    &failover_stream,
                    options_of,
                    Box::new(FixedPolicy(failover_config.batcher)),
                    RuntimeConfig::logical(failover_config),
                );
                assert!(report.is_conserving(), "twin failover run lost or duplicated queries");
                assert_eq!(report.shed, 0, "twin runs shed nothing");
                report.results
            } else {
                eprintln!(
                    "replay: failover answer map, {} queries under fault schedule {:?} ...",
                    failover_stream.len(),
                    args.fault
                );
                let mut service = SearchService::new(build_failover(work_scale), failover_config);
                service.replay(&failover_stream, options_of).results
            }
        } else {
            Vec::new()
        };
        // The live section: the single-tenant stream against the mutating
        // index, on both sides of the diff — snapshot resolution is a pure
        // function of each query's own arrival time, so the maps must stay
        // byte-identical even while epochs advance and compactions run.
        let live = if live_on {
            let plan = live_plan.as_ref().expect("live_on implies a plan");
            if args.runtime == RuntimeKind::Twin {
                let engines: Vec<_> = (0..workers)
                    .map(|_| {
                        let mut engine =
                            build_pim(&index, UpAnnsConfig::upanns(), DPUS, work_scale, &history);
                        assert!(
                            engine.install_timeline(plan.timeline.clone()),
                            "the upanns engine accepts snapshot timelines"
                        );
                        engine
                    })
                    .collect();
                eprintln!(
                    "twin: live-mutation logical-trace pipeline, {workers} worker(s), \
                     {} queries over {} epochs ...",
                    stream.len(),
                    plan.final_epoch
                );
                let report = run_pipeline(
                    engines,
                    &stream,
                    options_of,
                    Box::new(FixedPolicy(answers_config.batcher)),
                    RuntimeConfig::logical(answers_config)
                        .with_epoch_schedule(plan.timeline.epoch_schedule()),
                );
                assert!(report.is_conserving(), "twin live run lost or duplicated queries");
                assert_eq!(report.shed, 0, "twin runs shed nothing");
                report.results
            } else {
                eprintln!(
                    "replay: live-mutation answer map, {} queries over {} epochs ...",
                    stream.len(),
                    plan.final_epoch
                );
                let (mut service, accepted) = SearchService::new(
                    build_pim(&index, UpAnnsConfig::upanns(), DPUS, work_scale, &history),
                    answers_config,
                )
                .with_live_index(&plan.timeline);
                assert!(accepted, "the upanns engine accepts snapshot timelines");
                service.replay(&stream, options_of).results
            }
        } else {
            Vec::new()
        };
        match &args.answers {
            Some(path) => write_answers(path, &single, &multi, &failover, &live),
            None => eprintln!(
                "twin run complete ({} + {} + {} + {} answers, all conserved); \
                 use --answers PATH to write the map",
                single.len(),
                multi.len(),
                failover.len(),
                live.len()
            ),
        }
        return;
    }

    if args.runtime == RuntimeKind::Threaded {
        // The threaded default tenant mix is rescaled for wall-clock runs;
        // an explicit --tenants always wins.
        let threaded_tenants = if args.tenants_overridden {
            args.tenants.clone()
        } else {
            THREADED_TENANTS.to_string()
        };
        let tmix = parse_tenants(&threaded_tenants);
        let tstream = tmix.generate(&dataset);
        let multi_offered: f64 = tmix.tenants.iter().map(|t| t.stream.mean_qps).sum();
        let mut rows: Vec<(String, f64, usize, RuntimeReport)> = Vec::new();
        macro_rules! wall_run {
            ($w:expr, $stream:expr, $opts:expr, $policy:expr, $cfg:expr) => {
                match chosen_engine {
                    "cpu" => run_pipeline(
                        (0..$w)
                            .map(|_| CpuFaissEngine::new(&index).with_work_scale(args.work_scale))
                            .collect(),
                        $stream,
                        $opts,
                        $policy,
                        $cfg,
                    ),
                    "gpu" => run_pipeline(
                        (0..$w)
                            .map(|_| GpuFaissEngine::new(&index).with_work_scale(args.work_scale))
                            .collect(),
                        $stream,
                        $opts,
                        $policy,
                        $cfg,
                    ),
                    "pim-naive" => run_pipeline(
                        (0..$w)
                            .map(|_| {
                                build_pim(&index, UpAnnsConfig::pim_naive(), DPUS, args.work_scale, &history)
                            })
                            .collect(),
                        $stream,
                        $opts,
                        $policy,
                        $cfg,
                    ),
                    "upanns" => run_pipeline(
                        (0..$w)
                            .map(|_| {
                                build_pim(&index, UpAnnsConfig::upanns(), DPUS, args.work_scale, &history)
                            })
                            .collect(),
                        $stream,
                        $opts,
                        $policy,
                        $cfg,
                    ),
                    "multihost" => run_pipeline(
                        (0..$w).map(|_| build_multihost(args.work_scale)).collect(),
                        $stream,
                        $opts,
                        $policy,
                        $cfg,
                    ),
                    other => unreachable!("engine '{other}' escaped --engines validation"),
                }
            };
        }
        for &w in &args.workers {
            for &qps in &args.sweep_qps {
                // Bound each row's real duration to roughly six wall-clock
                // seconds of offered stream: enough arrivals to smooth the
                // Poisson noise, capped by --queries.
                let n = args.queries.min(((qps * 6.0) as usize).max(240));
                let row_stream = StreamSpec::new(n, qps)
                    .with_repeat_fraction(args.repeat)
                    .with_slo_p99(slo_s)
                    .generate(&dataset);
                eprintln!(
                    "threaded: {chosen_engine} single-tenant, {w} worker(s), \
                     {qps} qps offered, {n} queries ..."
                );
                let report = wall_run!(
                    w,
                    &row_stream,
                    options_of,
                    Box::new(FixedPolicy(service_config.batcher)),
                    RuntimeConfig::wall(service_config)
                );
                assert!(report.is_conserving(), "threaded run lost or duplicated queries");
                rows.push(("single".to_string(), qps, n, report));
            }
            eprintln!(
                "threaded: {chosen_engine} multi-tenant ({} tenants, {} queries), {w} worker(s) ...",
                tmix.tenants.len(),
                tstream.len()
            );
            let chunked = ServiceConfig {
                max_chunk: Some(args.max_chunk),
                ..service_config
            };
            let report = wall_run!(
                w,
                &tstream,
                |i| planned_options(&tstream, i),
                Box::new(ControllerBank::for_profiles(
                    &tstream.tenant_profiles,
                    service_config.batcher
                )),
                RuntimeConfig::wall(chunked)
            );
            assert!(report.is_conserving(), "threaded run lost or duplicated queries");
            rows.push(("multi".to_string(), multi_offered, tstream.len(), report));
            if failover_on {
                // The kill-a-host row runs in deterministic logical mode —
                // the fault schedule lives on the simulated clock, and the
                // row's point is conservation under faults, not wall time.
                eprintln!(
                    "threaded: failover (logical) under fault schedule {:?}, {w} worker(s), \
                     {} queries ...",
                    args.fault,
                    failover_stream.len()
                );
                let failover_config = ServiceConfig {
                    max_chunk: Some(FAILOVER_MAX_CHUNK),
                    ..service_config
                };
                let report = run_pipeline(
                    (0..w).map(|_| build_failover(args.work_scale)).collect(),
                    &failover_stream,
                    options_of,
                    Box::new(FixedPolicy(failover_config.batcher)),
                    RuntimeConfig::logical(failover_config),
                );
                assert!(
                    report.is_conserving(),
                    "failover run lost or duplicated queries"
                );
                rows.push(("failover".to_string(), FAILOVER_QPS, failover_stream.len(), report));
            }
            if live_on {
                // The live-mutation row runs in deterministic logical mode —
                // epoch visibility lives on the simulated clock, and the
                // row's point is conservation and zero stale answers while
                // the index mutates, not wall time.
                let plan = live_plan.as_ref().expect("live_on implies a plan");
                eprintln!(
                    "threaded: live-mutation (logical), {w} worker(s), \
                     {} queries over {} epochs ...",
                    stream.len(),
                    plan.final_epoch
                );
                let report = run_pipeline(
                    (0..w)
                        .map(|_| {
                            let mut engine = build_pim(
                                &index,
                                UpAnnsConfig::upanns(),
                                DPUS,
                                args.work_scale,
                                &history,
                            );
                            assert!(
                                engine.install_timeline(plan.timeline.clone()),
                                "the upanns engine accepts snapshot timelines"
                            );
                            engine
                        })
                        .collect(),
                    &stream,
                    options_of,
                    Box::new(FixedPolicy(service_config.batcher)),
                    RuntimeConfig::logical(service_config)
                        .with_epoch_schedule(plan.timeline.epoch_schedule()),
                );
                assert!(
                    report.is_conserving(),
                    "live-mutation run lost or duplicated queries"
                );
                rows.push(("live-mutation".to_string(), args.qps, stream.len(), report));
            }
        }

        println!(
            "| engine | workload | mode | workers | offered QPS | sustained QPS | p50 (ms) | p99 (ms) | completed | shed | lost | dup | cache hit |"
        );
        println!("|---|---|---|---|---|---|---|---|---|---|---|---|---|");
        for (workload, qps, _n, r) in &rows {
            print_runtime_row(r, workload, *qps);
        }

        if let Some(path) = &args.json {
            let body: Vec<String> = rows
                .iter()
                .map(|(workload, qps, n, r)| runtime_row_json(r, workload, *qps, *n))
                .collect();
            let workers_list: Vec<String> = args.workers.iter().map(|w| w.to_string()).collect();
            let sweep_list: Vec<String> = args.sweep_qps.iter().map(|&q| json_num(q)).collect();
            let json = format!(
                concat!(
                    "{{\n",
                    "  \"schema\": \"upanns-runtime-bench-v3\",\n",
                    "  \"config\": {{\n",
                    "    \"dataset_n\": {},\n",
                    "    \"nlist\": {},\n",
                    "    \"dpus\": {},\n",
                    "    \"work_scale\": {},\n",
                    "    \"workers\": [{}],\n",
                    "    \"sweep_qps\": [{}],\n",
                    "    \"repeat_fraction\": {},\n",
                    "    \"slo_p99_ms\": {},\n",
                    "    \"max_chunk\": {},\n",
                    "    \"queue_capacity\": {},\n",
                    "    \"fixed_max_batch\": {},\n",
                    "    \"fixed_max_delay_ms\": {},\n",
                    "    \"cache_capacity\": {},\n",
                    "    \"replicas\": {},\n",
                    "    \"fault\": \"{}\",\n",
                    "    \"hedge_ms\": {},\n",
                    "    \"mutations\": \"{}\",\n",
                    "    \"tenants\": \"{}\"\n",
                    "  }},\n",
                    "  \"rows\": [\n{}\n  ]\n",
                    "}}\n"
                ),
                DATASET_N,
                NLIST,
                DPUS,
                json_num(args.work_scale),
                workers_list.join(", "),
                sweep_list.join(", "),
                json_num(args.repeat),
                json_num(args.slo_ms),
                args.max_chunk,
                service_config.queue_capacity,
                service_config.batcher.max_batch,
                json_num(service_config.batcher.max_delay_s * 1e3),
                service_config.cache_capacity,
                args.replicas,
                args.fault,
                json_num(args.hedge_ms),
                args.mutations,
                threaded_tenants,
                body.join(",\n"),
            );
            std::fs::write(path, json).expect("write JSON report");
            eprintln!("wrote {path}");
        }
        return;
    }

    // Replays one engine under every requested policy, rebuilding nothing:
    // the engine is threaded through `into_engine` between replays.
    let mut reports: Vec<ServiceReport> = Vec::new();
    let run = |engine_name: &str, reports: &mut Vec<ServiceReport>| {
        macro_rules! replay_policies {
            ($engine:expr) => {{
                let mut engine = $engine;
                for &policy in &args.policies {
                    let service = SearchService::new(engine, service_config);
                    let mut service = match policy {
                        Policy::Fixed => service,
                        Policy::Adaptive => service.with_policy(Box::new(
                            SloController::for_slo(slo_s),
                        )),
                    };
                    reports.push(service.replay(&stream, options_of));
                    engine = service.into_engine();
                }
                let _ = engine;
            }};
        }
        match engine_name {
            "cpu" => replay_policies!(CpuFaissEngine::new(&index).with_work_scale(work_scale)),
            "gpu" => replay_policies!(GpuFaissEngine::new(&index).with_work_scale(work_scale)),
            "pim-naive" => replay_policies!(build_pim(&index, UpAnnsConfig::pim_naive(), DPUS, work_scale, &history)),
            "upanns" => replay_policies!(build_pim(&index, UpAnnsConfig::upanns(), DPUS, work_scale, &history)),
            "multihost" => replay_policies!(build_multihost(work_scale)),
            // parse_args rejects anything outside KNOWN_ENGINES and the
            // caller iterates exactly that list.
            other => unreachable!("engine '{other}' escaped --engines validation"),
        }
    };
    for name in KNOWN_ENGINES {
        if args.engines.iter().any(|e| e == name) {
            eprintln!("replaying {name} ...");
            run(name, &mut reports);
        }
    }

    // The multi-tenant scenario: several tenants share one UpANNS engine,
    // under the fixed global window, one global SloController (targeting the
    // tightest SLO in the mix — the only honest choice for a tenant-blind
    // controller), the per-tenant ControllerBank with whole-batch dispatch
    // (window-level isolation only), and the same bank under priority-
    // chunked engine dispatch (the head-of-line fix).
    let mut multi_reports: Vec<ServiceReport> = Vec::new();
    if args.engines.iter().any(|e| e == "upanns") {
        let tenant_mix = parse_tenants(&args.tenants);
        let tstream = tenant_mix.generate(&dataset);
        eprintln!(
            "replaying multi-tenant scenario on upanns ({} tenants, {} queries) ...",
            tstream.tenant_profiles.len(),
            tstream.len()
        );
        let tightest_slo = tstream.slo_p99_s.unwrap_or(slo_s);
        let mut scenario_policies: Vec<(&str, Option<usize>)> = Vec::new();
        if args.policies.contains(&Policy::Fixed) {
            scenario_policies.push(("fixed", None));
        }
        if args.policies.contains(&Policy::Adaptive) {
            scenario_policies.push(("adaptive-slo", None));
            scenario_policies.push(("adaptive-tenant", None));
            scenario_policies.push(("adaptive-tenant", Some(args.max_chunk)));
        }
        let mut engine = build_pim(&index, UpAnnsConfig::upanns(), DPUS, work_scale, &history);
        for (policy, max_chunk) in scenario_policies {
            let config = ServiceConfig {
                max_chunk,
                ..service_config
            };
            let service = SearchService::new(engine, config);
            let mut service = match policy {
                "fixed" => service,
                "adaptive-slo" => {
                    service.with_policy(Box::new(SloController::for_slo(tightest_slo)))
                }
                "adaptive-tenant" => service.with_policy(Box::new(ControllerBank::for_profiles(
                    &tstream.tenant_profiles,
                    fixed_batcher,
                ))),
                other => unreachable!("scenario policy '{other}'"),
            };
            multi_reports.push(service.replay_planned(&tstream));
            engine = service.into_engine();
        }
    }

    // The kill-a-host failover scenario: the replicated deployment serves
    // its own stream under the outage schedule, with hedged retries and the
    // capacity-model autoscaler in the loop; the recovery envelope is the
    // committed deliverable CI asserts on.
    let mut failover_reports: Vec<(ServiceReport, Option<RecoveryEnvelope>)> = Vec::new();
    if failover_on {
        eprintln!(
            "replaying failover scenario ({FAILOVER_SHARDS} shards on {FAILOVER_HOSTS} hosts, \
             r={}, fault {:?}, hedge {} ms, {} queries at {} qps) ...",
            args.replicas,
            args.fault,
            args.hedge_ms,
            failover_stream.len(),
            FAILOVER_QPS
        );
        let scaler = Autoscaler::new(
            CapacityModel::fit(&CAPACITY_SAMPLES),
            FAILOVER_QPS,
            FAILOVER_HOSTS,
            // Never below the committed shape (scale-downs would change the
            // healthy baseline), two hosts of elastic headroom above it.
            FAILOVER_HOSTS,
            FAILOVER_HOSTS + 2,
        );
        let failover_config = ServiceConfig {
            max_chunk: Some(FAILOVER_MAX_CHUNK),
            ..service_config
        };
        let mut service = SearchService::new(build_failover(work_scale), failover_config)
            .with_policy(Box::new(SloController::for_slo(FAILOVER_SLO_MS / 1e3)))
            .with_autoscaler(scaler);
        let report = service.replay(&failover_stream, options_of);
        let t_down = faults
            .events()
            .iter()
            .map(|e| e.down_at)
            .fold(f64::INFINITY, f64::min);
        let envelope = RecoveryEnvelope::from_outcomes(
            &report.outcomes,
            FAILOVER_SLO_MS / 1e3,
            t_down,
            ENVELOPE_BUCKET_S,
        );
        failover_reports.push((report, envelope));
    }

    // The live-mutation scenario: the single-tenant stream served against
    // the mutating index, then the tenant-corpus-grows-mid-stream variant
    // on the multi-tenant mix. Each row is audited after the fact — the
    // served answers are re-executed at their own arrivals (zero tolerance
    // for stale answers), p99 splits by compaction-window membership, and
    // recall is scored against the exact up-to-the-second corpus.
    let mut live_reports: Vec<(&'static str, ServiceReport, LiveSummary)> = Vec::new();
    if live_on {
        let plan = live_plan.as_ref().expect("live_on implies a plan");
        let events = live_events.as_ref().expect("live_on implies events");
        eprintln!(
            "replaying live-mutation scenario on upanns ({} events, {} epochs, \
             {} compaction(s)) ...",
            events.len(),
            plan.final_epoch,
            plan.compactions.len()
        );
        // Like the failover scenario, the live rows always run under the
        // adaptive policy: the fixed window collapses the UpANNS engine at
        // this offered load, and a collapsed row's p99 split would measure
        // queueing, not compaction.
        let (service, accepted) = SearchService::new(
            build_pim(&index, UpAnnsConfig::upanns(), DPUS, work_scale, &history),
            service_config,
        )
        .with_live_index(&plan.timeline);
        assert!(accepted, "the upanns engine accepts snapshot timelines");
        let mut service = service.with_policy(Box::new(SloController::for_slo(slo_s)));
        let report = service.replay(&stream, options_of);
        let mut oracle = service.into_engine();
        let summary =
            live_summary(&report, &mut oracle, &index, &stream, options_of, events, plan);
        assert_eq!(
            summary.stale_served, 0,
            "live-mutation replay served answers that differ from their arrival snapshot"
        );
        live_reports.push(("live-mutation", report, summary));

        // The growth variant: the last tenant in the mix (the bulk tenant in
        // the committed default) grows its corpus mid-stream, upserts only.
        let tenant_mix = parse_tenants(&args.tenants);
        let tstream = tenant_mix.generate(&dataset);
        let growth_tenant = TenantId(tenant_mix.tenants.len() as u32);
        let growth_events = MutationSpec::new(tstream.duration())
            .with_tenant(growth_tenant, LIVE_GROWTH_UPSERT_QPS, 0.0)
            .with_seed(live_args.expect("gated on live_on").seed ^ 0x9E37_79B9)
            .generate(&dataset, index.ntotal());
        let growth_plan = plan_live_index(
            &index,
            &growth_events,
            LIVE_REFRESH_S,
            &bench_compaction_policy(),
        );
        eprintln!(
            "replaying live-growth scenario (tenant {growth_tenant} grows at \
             {LIVE_GROWTH_UPSERT_QPS} upserts/s: {} events, {} epochs, {} compaction(s)) ...",
            growth_events.len(),
            growth_plan.final_epoch,
            growth_plan.compactions.len()
        );
        let (service, accepted) = SearchService::new(
            build_pim(&index, UpAnnsConfig::upanns(), DPUS, work_scale, &history),
            service_config,
        )
        .with_live_index(&growth_plan.timeline);
        assert!(accepted, "the upanns engine accepts snapshot timelines");
        let tightest = tstream.slo_p99_s.unwrap_or(slo_s);
        let mut service = service.with_policy(Box::new(SloController::for_slo(tightest)));
        let report = service.replay_planned(&tstream);
        let mut oracle = service.into_engine();
        let summary = live_summary(
            &report,
            &mut oracle,
            &index,
            &tstream,
            |i| planned_options(&tstream, i),
            &growth_events,
            &growth_plan,
        );
        assert_eq!(
            summary.stale_served, 0,
            "live-growth replay served answers that differ from their arrival snapshot"
        );
        live_reports.push(("live-growth", report, summary));
    }

    println!(
        "| engine | policy | sustained QPS | p50 (ms) | p99 (ms) | SLO miss | completed | shed | batches | chunks | mean batch | final window (ms) |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|---|---|");
    for r in &reports {
        println!(
            "| {} | {} | {:.1} | {:.3} | {:.3} | {:.1}% | {} | {} | {} | {} | {:.1} | {:.1} |",
            r.engine,
            r.policy,
            r.sustained_qps(),
            r.p50() * 1e3,
            r.p99() * 1e3,
            r.slo_miss_fraction() * 100.0,
            r.completed,
            r.shed,
            r.batches(),
            r.dispatched_chunks,
            r.mean_batch_size(),
            r.final_batcher.max_delay_s * 1e3,
        );
    }

    if !multi_reports.is_empty() {
        println!();
        println!("Multi-tenant scenario (upanns): {}", args.tenants);
        println!(
            "| policy | tenant | weight | SLO (ms) | completed | shed | p50 (ms) | p99 (ms) | SLO miss | meets | final window (ms) |"
        );
        println!("|---|---|---|---|---|---|---|---|---|---|---|");
        for r in &multi_reports {
            for t in &r.tenants {
                println!(
                    "| {} | {} | {} | {} | {} | {} | {:.3} | {:.3} | {:.1}% | {} | {:.1} |",
                    r.policy,
                    t.name,
                    t.weight,
                    t.slo_p99_s.map_or_else(|| "-".to_string(), |s| format!("{:.0}", s * 1e3)),
                    t.completed,
                    t.shed,
                    t.p50() * 1e3,
                    t.p99() * 1e3,
                    t.slo_miss_fraction() * 100.0,
                    if t.meets_slo() { "yes" } else { "NO" },
                    t.final_batcher.max_delay_s * 1e3,
                );
            }
        }
    }

    if !failover_reports.is_empty() {
        println!();
        println!(
            "Failover scenario: {FAILOVER_SHARDS} shards / {FAILOVER_HOSTS} hosts, r={}, \
             fault {}, hedge {} ms",
            args.replicas, args.fault, args.hedge_ms
        );
        println!(
            "| policy | sustained QPS | p99 (ms) | SLO miss | degraded | hedged | redisp | scale events | migration (s) | baseline | max dip | recovery (s) |"
        );
        println!("|---|---|---|---|---|---|---|---|---|---|---|---|");
        for (r, env) in &failover_reports {
            let (baseline, dip, recovery) = env.as_ref().map_or_else(
                || ("-".to_string(), "-".to_string(), "-".to_string()),
                |e| {
                    (
                        format!("{:.3}", e.baseline_attainment),
                        format!("{:.3}", e.max_dip),
                        if e.recovered {
                            format!("{:.1}", e.recovery_s)
                        } else {
                            "never".to_string()
                        },
                    )
                },
            );
            println!(
                "| {} | {:.1} | {:.3} | {:.1}% | {} | {} | {} | {} | {:.3} | {} | {} | {} |",
                r.policy,
                r.sustained_qps(),
                r.p99() * 1e3,
                r.slo_miss_fraction() * 100.0,
                r.degraded,
                r.hedged,
                r.redispatched,
                r.scale_events,
                r.migration_s,
                baseline,
                dip,
                recovery,
            );
        }
    }

    if !live_reports.is_empty() {
        println!();
        println!(
            "Live-mutation scenario (upanns): {} (snapshot refresh every {} s)",
            args.mutations, LIVE_REFRESH_S
        );
        println!(
            "| workload | events | epochs | compactions | invalidated | stale | in-window | p99 steady (ms) | p99 compaction (ms) | recall lag=0 | lag=1-10 | lag=11-100 | lag=101+ |"
        );
        println!("|---|---|---|---|---|---|---|---|---|---|---|---|---|");
        for (workload, r, s) in &live_reports {
            let recalls: Vec<String> = s
                .buckets
                .iter()
                .map(|b| {
                    if b.queries == 0 {
                        "-".to_string()
                    } else {
                        format!("{:.3} ({})", b.mean_recall, b.queries)
                    }
                })
                .collect();
            println!(
                "| {} | {} | {} | {} | {} | {} | {} | {:.3} | {:.3} | {} | {} | {} | {} |",
                workload,
                s.mutation_events,
                s.final_epoch,
                s.compactions,
                r.cache_invalidated,
                s.stale_served,
                s.answered_in_window,
                s.p99_steady_ms,
                s.p99_compaction_ms,
                recalls[0],
                recalls[1],
                recalls[2],
                recalls[3],
            );
        }
    }

    if let Some(path) = args.json {
        let engines: Vec<String> = reports
            .iter()
            .map(|r| report_json(r, "single", None, None))
            .chain(multi_reports.iter().map(|r| report_json(r, "multi", None, None)))
            .chain(
                failover_reports
                    .iter()
                    .map(|(r, env)| report_json(r, "failover", env.as_ref(), None)),
            )
            .chain(
                live_reports
                    .iter()
                    .map(|(workload, r, s)| report_json(r, workload, None, Some(s))),
            )
            .collect();
        let json = format!(
            concat!(
                "{{\n",
                "  \"schema\": \"upanns-serving-bench-v6\",\n",
                "  \"config\": {{\n",
                "    \"dataset_n\": {},\n",
                "    \"nlist\": {},\n",
                "    \"dpus\": {},\n",
                "    \"work_scale\": {},\n",
                "    \"num_queries\": {},\n",
                "    \"offered_qps\": {},\n",
                "    \"repeat_fraction\": {},\n",
                "    \"slo_p99_ms\": {},\n",
                "    \"hosts\": {},\n",
                "    \"max_chunk\": {},\n",
                "    \"queue_capacity\": {},\n",
                "    \"fixed_max_batch\": {},\n",
                "    \"fixed_max_delay_ms\": {},\n",
                "    \"cache_capacity\": {},\n",
                "    \"replicas\": {},\n",
                "    \"fault\": \"{}\",\n",
                "    \"hedge_ms\": {},\n",
                "    \"mutations\": \"{}\",\n",
                "    \"live_refresh_s\": {},\n",
                "    \"tenants\": \"{}\"\n",
                "  }},\n",
                "  \"engines\": [\n{}\n  ]\n",
                "}}\n"
            ),
            DATASET_N,
            NLIST,
            DPUS,
            json_num(work_scale),
            args.queries,
            json_num(args.qps),
            json_num(args.repeat),
            json_num(args.slo_ms),
            args.hosts,
            args.max_chunk,
            service_config.queue_capacity,
            fixed_batcher.max_batch,
            json_num(fixed_batcher.max_delay_s * 1e3),
            service_config.cache_capacity,
            args.replicas,
            args.fault,
            json_num(args.hedge_ms),
            args.mutations,
            json_num(LIVE_REFRESH_S),
            args.tenants,
            engines.join(",\n"),
        );
        std::fs::write(&path, json).expect("write JSON baseline");
        eprintln!("wrote {path}");
    }
}
