//! Opt3 (online-format half): co-occurrence aware, PIM-friendly re-encoding.
//!
//! UpANNS stores encoded points as streams of 16-bit *direct addresses*
//! instead of 8-bit codebook indices:
//!
//! * a direct entry `a < 256·m` addresses LUT slot `a` directly
//!   (`a = position·256 + code`), so the DPU never multiplies (§4.3 notes
//!   multiplications are ~32 cycles on the DPU);
//! * a combination entry `a ≥ 256·m` addresses the cached partial sum of
//!   mined combination `a − 256·m`, replacing 2–3 lookups + adds with one.
//!
//! Each re-encoded vector is stored as `[length, entry₀, …]`. The per-cluster
//! *length reduction rate* (1 − avg-length / m) is the x-axis of Figure 14:
//! higher reduction ⇒ fewer WRAM lookups, fewer adds and fewer MRAM bytes ⇒
//! faster distance calculation.

use crate::cooccurrence::ComboTable;
use annkit::lut::LookupTable;

/// A co-occurrence-aware encoded inverted list (one cluster).
#[derive(Debug, Clone)]
pub struct CaeList {
    m: usize,
    num_combos: usize,
    /// Entry stream: for each vector, `[len, addr₀, …, addr_{len−1}]`.
    entries: Vec<u16>,
    /// Start offset of each vector's record within `entries`.
    offsets: Vec<u32>,
}

impl CaeList {
    /// Re-encodes a cluster's packed PQ codes (`n × m` bytes) using the mined
    /// `combos`. Combos are applied greedily in table order (most frequent
    /// first) without overlapping positions.
    ///
    /// # Panics
    /// Panics if the packed buffer is not a multiple of `m` or if
    /// `256·m + combos.len()` would not fit in a `u16` address.
    pub fn encode(packed_codes: &[u8], m: usize, combos: &ComboTable) -> Self {
        assert!(packed_codes.len().is_multiple_of(m), "packed codes not a multiple of m");
        assert!(
            256 * m + combos.len() <= u16::MAX as usize,
            "address space overflow: m={m}, combos={}",
            combos.len()
        );
        let n = packed_codes.len() / m;
        let mut entries = Vec::with_capacity(n * (m + 1));
        let mut offsets = Vec::with_capacity(n);

        for code in packed_codes.chunks_exact(m) {
            offsets.push(entries.len() as u32);
            let mut covered = vec![false; m];
            let mut record: Vec<u16> = Vec::with_capacity(m);

            // Greedy non-overlapping combo matching, most frequent first.
            for (idx, combo) in combos.combos().iter().enumerate() {
                if combo.matches(code) && combo.positions().iter().all(|&p| !covered[p]) {
                    for &p in &combo.positions() {
                        covered[p] = true;
                    }
                    record.push((256 * m + idx) as u16);
                }
            }
            // Remaining positions become direct LUT addresses.
            for (p, &c) in code.iter().enumerate() {
                if !covered[p] {
                    record.push((p * 256 + c as usize) as u16);
                }
            }

            entries.push(record.len() as u16);
            entries.extend_from_slice(&record);
        }

        Self {
            m,
            num_combos: combos.len(),
            entries,
            offsets,
        }
    }

    /// Re-encodes without any combinations: every vector becomes `m` direct
    /// addresses (the representation UpANNS uses when CAE is disabled).
    pub fn encode_plain(packed_codes: &[u8], m: usize) -> Self {
        Self::encode(packed_codes, m, &ComboTable::empty())
    }

    /// Number of vectors in the list.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Number of PQ positions of the original codes.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of combination addresses in use.
    pub fn num_combos(&self) -> usize {
        self.num_combos
    }

    /// The encoded entry count (including the per-vector length slots).
    pub fn total_entries(&self) -> usize {
        self.entries.len()
    }

    /// Bytes occupied by the encoded stream (2 bytes per entry).
    pub fn bytes(&self) -> usize {
        self.entries.len() * 2
    }

    /// The record of vector `i`: its address entries (without the length
    /// slot).
    pub fn record(&self, i: usize) -> &[u16] {
        let start = self.offsets[i] as usize;
        let len = self.entries[start] as usize;
        &self.entries[start + 1..start + 1 + len]
    }

    /// Average encoded length per vector (address entries only).
    pub fn mean_length(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let total: usize = (0..self.len()).map(|i| self.record(i).len()).sum();
        total as f64 / self.len() as f64
    }

    /// The length reduction rate relative to the plain `m`-entry encoding
    /// (the x-axis of Figure 14).
    pub fn reduction_rate(&self) -> f64 {
        if self.m == 0 {
            return 0.0;
        }
        (1.0 - self.mean_length() / self.m as f64).max(0.0)
    }

    /// Serializes the stream as little-endian bytes for MRAM placement.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.entries.len() * 2);
        for &e in &self.entries {
            out.extend_from_slice(&e.to_le_bytes());
        }
        out
    }

    /// Byte range `[start, end)` of vector `i`'s record (including its length
    /// slot) within [`to_bytes`](Self::to_bytes)' output — used to plan MRAM
    /// reads.
    pub fn record_byte_range(&self, i: usize) -> (usize, usize) {
        let start = self.offsets[i] as usize;
        let len = self.entries[start] as usize;
        (start * 2, (start + 1 + len) * 2)
    }

    /// Computes the ADC distance of vector `i` given a LUT and the cluster's
    /// cached combo partial sums (must come from the same [`ComboTable`] the
    /// list was encoded with). This is the arithmetic the DPU kernel executes.
    pub fn adc_distance(&self, i: usize, lut: &LookupTable, combo_sums: &[f32]) -> f32 {
        let mut sum = 0.0f32;
        for &entry in self.record(i) {
            let entry = entry as usize;
            if entry < 256 * self.m {
                sum += lut.get_flat(entry);
            } else {
                sum += combo_sums[entry - 256 * self.m];
            }
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cooccurrence::{mine_cluster_combos, MiningParams};
    use annkit::pq::ProductQuantizer;
    use annkit::vector::Dataset;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// A cluster of codes where 40 % of vectors share a positioned triple.
    fn patterned_codes(n: usize, m: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(n * m);
        for i in 0..n {
            for p in 0..m {
                out.push(((i * 13 + p * 7) % 240) as u8);
            }
            if i % 5 < 2 {
                let base = out.len() - m;
                out[base + 1] = 42;
                out[base + 2] = 43;
                out[base + 3] = 44;
            }
        }
        out
    }

    fn trained_lut(m: usize, dim: usize) -> (ProductQuantizer, LookupTable) {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut ds = Dataset::new(dim);
        let mut v = vec![0.0f32; dim];
        for _ in 0..400 {
            for x in v.iter_mut() {
                *x = rng.gen_range(-1.0..1.0);
            }
            ds.push(&v);
        }
        let pq = ProductQuantizer::train(&ds, m, 9);
        let lut = LookupTable::build(&pq, ds.vector(0));
        (pq, lut)
    }

    #[test]
    fn plain_encoding_has_m_entries_and_zero_reduction() {
        let codes = patterned_codes(100, 8);
        let plain = CaeList::encode_plain(&codes, 8);
        assert_eq!(plain.len(), 100);
        assert_eq!(plain.mean_length(), 8.0);
        assert_eq!(plain.reduction_rate(), 0.0);
        assert_eq!(plain.record(0).len(), 8);
        assert_eq!(plain.bytes(), 100 * 9 * 2);
        assert_eq!(plain.num_combos(), 0);
    }

    #[test]
    fn cae_encoding_is_shorter_and_lossless() {
        let m = 8;
        let codes = patterned_codes(500, m);
        let combos = mine_cluster_combos(&codes, m, &MiningParams::default());
        assert!(!combos.is_empty());
        let cae = CaeList::encode(&codes, m, &combos);
        assert!(cae.reduction_rate() > 0.05, "rate {}", cae.reduction_rate());
        assert!(cae.mean_length() < m as f64);

        // Losslessness: the CAE ADC distance equals the plain LUT ADC distance
        // for every vector.
        let (_pq, lut) = trained_lut(m, 16);
        let sums = combos.partial_sums(&lut);
        for i in 0..cae.len() {
            let code = &codes[i * m..(i + 1) * m];
            let direct: f32 = lut.adc_distance(code);
            let via_cae = cae.adc_distance(i, &lut, &sums);
            assert!(
                (direct - via_cae).abs() < 1e-3,
                "vector {i}: {direct} vs {via_cae}"
            );
        }
    }

    #[test]
    fn combos_never_overlap_positions() {
        let m = 8;
        let codes = patterned_codes(300, m);
        let combos = mine_cluster_combos(&codes, m, &MiningParams::default());
        let cae = CaeList::encode(&codes, m, &combos);
        for i in 0..cae.len() {
            let mut covered = vec![0usize; m];
            for &entry in cae.record(i) {
                let entry = entry as usize;
                if entry < 256 * m {
                    covered[entry / 256] += 1;
                } else {
                    for p in combos.combos()[entry - 256 * m].positions() {
                        covered[p] += 1;
                    }
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "vector {i} coverage {covered:?}");
        }
    }

    #[test]
    fn byte_ranges_and_serialization_are_consistent() {
        let m = 8;
        let codes = patterned_codes(50, m);
        let combos = mine_cluster_combos(&codes, m, &MiningParams::default());
        let cae = CaeList::encode(&codes, m, &combos);
        let bytes = cae.to_bytes();
        assert_eq!(bytes.len(), cae.bytes());
        for i in 0..cae.len() {
            let (start, end) = cae.record_byte_range(i);
            assert!(end <= bytes.len());
            // First u16 in the range is the record length.
            let len = u16::from_le_bytes([bytes[start], bytes[start + 1]]) as usize;
            assert_eq!(len, cae.record(i).len());
            assert_eq!(end - start, (len + 1) * 2);
        }
    }

    #[test]
    fn higher_cooccurrence_gives_higher_reduction() {
        let m = 8;
        // 80 % patterned vs 20 % patterned.
        let mut heavy = Vec::new();
        let mut light = Vec::new();
        for i in 0..400usize {
            let mut code: Vec<u8> = (0..m).map(|p| ((i * 13 + p * 7) % 240) as u8).collect();
            let mut code2 = code.clone();
            if i % 10 < 8 {
                code[1] = 42;
                code[2] = 43;
                code[3] = 44;
            }
            if i % 10 < 2 {
                code2[1] = 42;
                code2[2] = 43;
                code2[3] = 44;
            }
            heavy.extend_from_slice(&code);
            light.extend_from_slice(&code2);
        }
        let params = MiningParams::default();
        let cae_heavy = CaeList::encode(&heavy, m, &mine_cluster_combos(&heavy, m, &params));
        let cae_light = CaeList::encode(&light, m, &mine_cluster_combos(&light, m, &params));
        assert!(
            cae_heavy.reduction_rate() > cae_light.reduction_rate(),
            "heavy {} vs light {}",
            cae_heavy.reduction_rate(),
            cae_light.reduction_rate()
        );
    }

    #[test]
    #[should_panic(expected = "not a multiple of m")]
    fn ragged_codes_rejected() {
        let _ = CaeList::encode_plain(&[1, 2, 3], 2);
    }
}
