//! Opt4: pruned merge of thread-local top-k heaps (Figure 9).
//!
//! After the distance-calculation barrier, each tasklet holds a max-heap with
//! its local top-k. Merging them naively inserts every element into the
//! DPU-global heap. UpANNS instead converts each local max-heap into an
//! ascending sequence (a min-heap popped in order) and stops as soon as the
//! local minimum can no longer beat the global k-th best — the remaining
//! elements of that tasklet are pruned without any comparison. The paper
//! reports 68 % of comparisons skipped and a 3.1× faster top-k stage.

use annkit::topk::{Neighbor, TopK};

/// Counters describing one merge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Candidates examined (offered to the global heap or compared against
    /// the threshold).
    pub comparisons: u64,
    /// Candidates actually inserted into the global heap.
    pub insertions: u64,
    /// Candidates skipped by early termination.
    pub pruned: u64,
    /// Semaphore acquisitions (one per tasklet that contributes at least one
    /// element).
    pub semaphore_ops: u64,
}

impl MergeStats {
    /// Fraction of candidates skipped without a comparison.
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.comparisons + self.pruned;
        if total == 0 {
            0.0
        } else {
            self.pruned as f64 / total as f64
        }
    }
}

/// Merges thread-local heaps into a global top-k.
///
/// With `prune = false` this is the naive merge (every local element is
/// offered to the global heap). With `prune = true` the early-termination
/// strategy of §4.4 is applied. Both produce exactly the same global top-k;
/// only the number of comparisons differs.
pub fn merge_thread_local(locals: &[TopK], k: usize, prune: bool) -> (TopK, MergeStats) {
    let mut global = TopK::new(k);
    let mut stats = MergeStats::default();

    for local in locals {
        if local.is_empty() {
            continue;
        }
        stats.semaphore_ops += 1;
        // Convert the local max-heap into ascending order — the min-heap view
        // of Figure 9.
        let ascending = local.sorted();
        for (i, n) in ascending.iter().enumerate() {
            if prune && global.len() == k && n.distance >= global.threshold() {
                // Everything further in this tasklet's heap is at least as
                // far; prune it without comparisons.
                stats.pruned += (ascending.len() - i) as u64;
                break;
            }
            stats.comparisons += 1;
            if global.push(n.id, n.distance) {
                stats.insertions += 1;
            }
        }
    }
    (global, stats)
}

/// Convenience wrapper returning the merged neighbors sorted ascending.
pub fn merge_to_sorted(locals: &[TopK], k: usize, prune: bool) -> (Vec<Neighbor>, MergeStats) {
    let (heap, stats) = merge_thread_local(locals, k, prune);
    (heap.into_sorted(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds `t` thread-local heaps of capacity `k` over a deterministic
    /// stream of candidates, mimicking a strided scan.
    fn make_locals(t: usize, k: usize, candidates: usize) -> Vec<TopK> {
        let mut locals = vec![TopK::new(k); t];
        for i in 0..candidates {
            let d = ((i * 2654435761) % 100_000) as f32 / 100.0;
            locals[i % t].push(i as u64, d);
        }
        locals
    }

    #[test]
    fn pruned_and_naive_merges_agree() {
        for t in [1, 4, 8, 16] {
            let locals = make_locals(t, 10, 5_000);
            let (pruned, _) = merge_to_sorted(&locals, 10, true);
            let (naive, _) = merge_to_sorted(&locals, 10, false);
            assert_eq!(pruned.len(), naive.len());
            for (a, b) in pruned.iter().zip(&naive) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.distance, b.distance);
            }
        }
    }

    #[test]
    fn pruning_skips_a_large_fraction_of_comparisons() {
        let locals = make_locals(16, 64, 20_000);
        let (_, pruned_stats) = merge_thread_local(&locals, 64, true);
        let (_, naive_stats) = merge_thread_local(&locals, 64, false);
        assert_eq!(naive_stats.pruned, 0);
        assert!(pruned_stats.pruned > 0);
        assert!(
            pruned_stats.comparisons < naive_stats.comparisons,
            "pruned {} vs naive {}",
            pruned_stats.comparisons,
            naive_stats.comparisons
        );
        // The paper reports ~68 % of comparisons skipped; with 16 tasklets of
        // 64 candidates each we should prune a substantial share.
        assert!(
            pruned_stats.pruned_fraction() > 0.4,
            "pruned fraction {}",
            pruned_stats.pruned_fraction()
        );
    }

    #[test]
    fn merge_of_disjoint_ranges_prunes_everything_but_the_best_heap() {
        // Tasklet 0 holds distances 0..10, tasklet 1 holds 100..110 — the
        // second heap's first element already fails the threshold.
        let mut a = TopK::new(10);
        let mut b = TopK::new(10);
        for i in 0..10u64 {
            a.push(i, i as f32);
            b.push(100 + i, 100.0 + i as f32);
        }
        let (global, stats) = merge_thread_local(&[a, b], 10, true);
        let ids: Vec<u64> = global.into_sorted().iter().map(|n| n.id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<u64>>());
        assert_eq!(stats.pruned, 10);
        assert_eq!(stats.semaphore_ops, 2);
    }

    #[test]
    fn handles_empty_and_underfull_heaps() {
        let empty = TopK::new(5);
        let mut partial = TopK::new(5);
        partial.push(3, 1.0);
        let (global, stats) = merge_thread_local(&[empty, partial], 5, true);
        let sorted = global.into_sorted();
        assert_eq!(sorted.len(), 1);
        assert_eq!(sorted[0].id, 3);
        assert_eq!(stats.semaphore_ops, 1);
        assert_eq!(stats.pruned, 0);
    }

    #[test]
    fn stats_fraction_is_zero_when_nothing_to_merge() {
        let (global, stats) = merge_thread_local(&[], 5, true);
        assert!(global.is_empty());
        assert_eq!(stats.pruned_fraction(), 0.0);
    }
}
