//! # baselines — Faiss-CPU-like and Faiss-GPU-like IVFPQ engines
//!
//! The UpANNS paper compares against the CPU and GPU implementations of IVFPQ
//! in Meta's Faiss library on the hardware of Table 1. Neither that hardware
//! nor CUDA is available here, so this crate provides:
//!
//! * [`hardware`] — the Table 1 hardware specifications (capacity, peak
//!   power, bandwidth, price) as data,
//! * [`engine`] — the request-centric [`AnnEngine`] trait with its
//!   [`SearchRequest`] / [`SearchResponse`] types shared by every engine
//!   in the repository (CPU, GPU, PIM-naive, UpANNS),
//! * [`cpu`] — a functional IVFPQ engine whose stage times follow a roofline
//!   model of the paper's dual-Xeon platform,
//! * [`gpu`] — a functional IVFPQ engine whose stage times follow an A100
//!   model, including the low-parallelism top-k stage that dominates GPU
//!   runtime (Figure 19) and the 80 GB capacity limit that makes DEEP1B
//!   configurations go out-of-memory (Figure 12).
//!
//! Both engines share the *functional* search path of
//! [`annkit::ivf::IvfPqIndex`], so their answers (and hence recall) are
//! identical; only their timing models differ. This mirrors the paper's
//! setup, where all baselines implement the same IVFPQ algorithm.

#![forbid(unsafe_code)]

pub mod cpu;
pub mod engine;
pub mod exec;
pub mod gpu;
pub mod hardware;
pub mod workload_stats;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::cpu::{CpuFaissEngine, CpuSpec};
    pub use crate::engine::{
        AnnEngine, QueryOptions, SearchOutcome, SearchRequest, SearchResponse,
    };
    pub use crate::gpu::{GpuFaissEngine, GpuSpec};
    pub use crate::hardware::{HardwareSpec, hardware_table};
    pub use crate::workload_stats::WorkloadStats;
}

pub use cpu::CpuFaissEngine;
pub use engine::{AnnEngine, QueryOptions, SearchOutcome, SearchRequest, SearchResponse};
pub use gpu::GpuFaissEngine;
