//! `serve` — replay a timed query stream through the serving front-end on
//! every engine, under both a fixed and an SLO-adaptive batch policy, and
//! report sustained QPS, latency percentiles and SLO attainment.
//!
//! ```text
//! cargo run --release -p upanns-serve --bin serve -- [--queries N] [--qps R]
//!     [--repeat F] [--slo-ms S] [--hosts H] [--max-chunk C]
//!     [--engines cpu,gpu,pim-naive,upanns,multihost]
//!     [--policy fixed|adaptive|both] [--tenants SPEC] [--json PATH]
//! ```
//!
//! Besides the single-tenant sweep, the binary replays a **multi-tenant
//! scenario** on the UpANNS engine (whenever `upanns` is among the selected
//! engines): several tenants with their own Poisson rates, option mixes,
//! weights and p99 SLOs share one serving front-end, under four policies —
//! the fixed global window, one global [`SloController`] (which can only
//! target the *tightest* SLO in the mix), the per-tenant [`ControllerBank`]
//! with whole-batch close-order dispatch (window-level isolation only), and
//! the same bank under **priority-chunked engine dispatch** (`--max-chunk`,
//! the `adaptive-tenant-chunked` row): bulk batches hit the serial engine
//! in size-capped chunks, earliest SLO deadline first, so the tight tenant
//! waits at most one chunk instead of a whole bulk batch. The committed
//! default is a tight-SLO low-rate tenant next to a loose-SLO bulk tenant
//! whose batches are individually longer than the tight tenant's slack:
//! chunked priority dispatch meets both SLOs where per-tenant windows alone
//! (and every single-window policy) miss the tight tenant — head-of-line
//! blocking is an engine-level problem the batching window cannot fix.
//!
//! `--tenants` replaces the built-in mix. The grammar is
//! `NAME:key=val,...;NAME:...` with keys `qps` (required), `queries`,
//! `slo-ms`, `weight`, `repeat` and `mix` (`KxN` pairs joined by `+`), e.g.
//! `tight:qps=3,queries=240,slo-ms=2500,weight=2,mix=10x8;bulk:qps=30,mix=10x4+20x8`.
//!
//! The replay is fully deterministic (fixed seeds, simulated clock), so the
//! `--json` output doubles as the committed `BENCH_serving.json` regression
//! baseline: rerun with the default arguments and diff.
//!
//! The default offered load is deliberately *small* relative to the PIM
//! engines' large-batch capacity: under the fixed low-latency batching window
//! the per-(query,cluster) granules don't amortize and the PIM engines
//! collapse, while the [`SloController`] widens the window until batches are
//! large enough to keep up — without letting the observed p99 cross the SLO.

#![forbid(unsafe_code)]

use annkit::ivf::{IvfPqIndex, IvfPqParams};
use annkit::synthetic::SyntheticSpec;
use annkit::workload::{MultiTenantSpec, StreamSpec, TenantId, TenantSpec, WorkloadSpec};
use baselines::cpu::CpuFaissEngine;
use baselines::engine::QueryOptions;
use baselines::gpu::GpuFaissEngine;
use pim_sim::config::PimConfig;
use upanns::builder::{BatchCapacity, UpAnnsBuilder};
use upanns::config::UpAnnsConfig;
use upanns::multihost::{shard_ranges, InterconnectModel, MultiHostUpAnns};
use upanns::engine::UpAnnsEngine;
use upanns_serve::batcher::BatchFormerConfig;
use upanns_serve::controller::{ControllerBank, SloController};
use upanns_serve::{SearchService, ServiceConfig, ServiceReport};

/// Fixed tiny-scale evaluation shape (kept stable so the JSON baseline is
/// comparable PR-over-PR).
const DATASET_N: usize = 4_000;
const NLIST: usize = 512;
const PQ_M: usize = 16;
const DPUS: usize = 896;
/// Modeled dataset size for the work-scale projection. Chosen so the modeled
/// per-cluster size (MODELED_N / NLIST = 244k vectors) matches the reference
/// billion-scale configuration (10^9 / 4096) that the `figures` experiments
/// use — per-DPU granule times are then comparable to fig12's.
const MODELED_N: f64 = 1.25e8;

/// Every engine the binary knows how to build, in report order.
const KNOWN_ENGINES: [&str; 5] = ["cpu", "gpu", "pim-naive", "upanns", "multihost"];

/// The committed head-of-line (HOL) scenario: a tight-SLO low-rate tenant
/// sharing the engine with a loose-SLO bulk tenant whose batches are
/// individually *longer than the tight tenant's whole SLO*. Per-tenant
/// windows (the `adaptive-tenant` row) fix the window-level coupling but
/// not the engine-level one — the tight tenant still waits out whichever
/// bulk batch is in flight or already queued, and misses. Only the
/// priority-chunked dispatcher (`adaptive-tenant-chunked`) bounds that wait
/// to one chunk and meets both SLOs.
const DEFAULT_TENANTS: &str = "tight:qps=2,queries=200,slo-ms=700,weight=2,mix=10x8;\
                               bulk:qps=18,queries=1400,slo-ms=30000,weight=1,mix=10x4+10x8+20x8";

struct Args {
    queries: usize,
    qps: f64,
    repeat: f64,
    slo_ms: f64,
    hosts: usize,
    max_chunk: usize,
    engines: Vec<String>,
    policies: Vec<Policy>,
    tenants: String,
    json: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    Fixed,
    Adaptive,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            queries: 1_000,
            qps: 12.0,
            repeat: 0.25,
            slo_ms: 6_000.0,
            hosts: 2,
            max_chunk: 32,
            engines: KNOWN_ENGINES.iter().map(|s| s.to_string()).collect(),
            policies: vec![Policy::Fixed, Policy::Adaptive],
            tenants: DEFAULT_TENANTS.to_string(),
            json: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: serve [--queries N] [--qps R] [--repeat F] [--slo-ms S] [--hosts H]\n\
         \x20            [--max-chunk C] [--engines cpu,gpu,pim-naive,upanns,multihost] \n\
         \x20            [--policy fixed|adaptive|both] [--tenants SPEC] [--json PATH]\n\
         \n\
         --max-chunk caps how many queries one dispatch may commit the engine to\n\
         in the chunked multi-tenant row (adaptive-tenant-chunked).\n\
         \n\
         --tenants grammar: NAME:key=val,...;NAME:... with keys qps (required),\n\
         queries, slo-ms, weight, repeat, mix (KxN pairs joined by '+'), e.g.\n\
         \x20  tight:qps=3,slo-ms=2500,weight=2,mix=10x8;bulk:qps=30,mix=10x4+20x8\n\
         The multi-tenant scenario replays on the upanns engine when selected."
    );
    std::process::exit(0);
}

/// Exits nonzero with a clear message — the fate of an unknown engine,
/// policy name, or malformed tenant spec (silently skipping it would fake a
/// clean bench run).
fn reject(message: String) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

/// Parses the `--tenants` grammar (see [`usage`]) into a [`MultiTenantSpec`].
/// Tenant ids are assigned by position (1-based).
fn parse_tenants(spec: &str) -> MultiTenantSpec {
    let mut mix = MultiTenantSpec::new();
    for (index, entry) in spec.split(';').enumerate() {
        let entry = entry.trim();
        if entry.is_empty() {
            reject(format!("--tenants: empty tenant entry at position {index}"));
        }
        let (name, body) = entry
            .split_once(':')
            .unwrap_or_else(|| reject(format!("--tenants: '{entry}' has no NAME: prefix")));
        let name = name.trim();
        // Names are echoed verbatim into the JSON baseline, so keep them to
        // characters that need no escaping anywhere.
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            reject(format!(
                "--tenants: tenant name '{name}' must be non-empty [A-Za-z0-9_-]"
            ));
        }
        let mut qps: Option<f64> = None;
        let mut queries = 600usize;
        let mut slo_ms: Option<f64> = None;
        let mut weight = 1u32;
        let mut repeat = 0.0f64;
        let mut option_mix: Vec<(usize, usize)> = vec![(10, 8)];
        fn bad<T>(kv: &str, what: &str) -> T {
            reject(format!("--tenants: {kv}: {what}"))
        }
        for kv in body.split(',') {
            let (key, value) = kv
                .split_once('=')
                .unwrap_or_else(|| reject(format!("--tenants: '{kv}' is not key=value")));
            match key.trim() {
                "qps" => qps = Some(value.parse().unwrap_or_else(|_| bad(kv, "not a number"))),
                "queries" => queries = value.parse().unwrap_or_else(|_| bad(kv, "not an integer")),
                "slo-ms" => slo_ms = Some(value.parse().unwrap_or_else(|_| bad(kv, "not a number"))),
                "weight" => weight = value.parse().unwrap_or_else(|_| bad(kv, "not an integer")),
                "repeat" => repeat = value.parse().unwrap_or_else(|_| bad(kv, "not a number")),
                "mix" => {
                    option_mix = value
                        .split('+')
                        .map(|tier| {
                            let (k, nprobe) = tier
                                .split_once('x')
                                .unwrap_or_else(|| bad(kv, "mix tiers are KxN"));
                            (
                                k.parse().unwrap_or_else(|_| bad(kv, "k not an integer")),
                                nprobe
                                    .parse()
                                    .unwrap_or_else(|_| bad(kv, "nprobe not an integer")),
                            )
                        })
                        .collect();
                }
                other => reject(format!(
                    "--tenants: unknown key '{other}' (known: qps, queries, slo-ms, weight, repeat, mix)"
                )),
            }
        }
        let qps =
            qps.unwrap_or_else(|| reject(format!("--tenants: tenant '{name}' needs qps=")));
        if !(qps > 0.0 && qps.is_finite()) {
            reject(format!("--tenants: tenant '{name}': qps must be positive"));
        }
        if queries == 0 {
            reject(format!("--tenants: tenant '{name}': queries must be at least 1"));
        }
        if weight == 0 {
            reject(format!("--tenants: tenant '{name}': weight must be at least 1"));
        }
        if !(0.0..=1.0).contains(&repeat) {
            reject(format!("--tenants: tenant '{name}': repeat must be in [0, 1]"));
        }
        if option_mix.iter().any(|&(k, nprobe)| k == 0 || nprobe == 0) {
            reject(format!("--tenants: tenant '{name}': mix tiers need k and nprobe >= 1"));
        }
        let mut stream = StreamSpec::new(queries, qps).with_repeat_fraction(repeat);
        if let Some(ms) = slo_ms {
            if !(ms > 0.0 && ms.is_finite()) {
                reject(format!("--tenants: tenant '{name}': slo-ms must be positive"));
            }
            stream = stream.with_slo_p99(ms / 1e3);
        }
        mix = mix.with_tenant(
            TenantSpec::new(TenantId(index as u32 + 1), stream)
                .with_name(name)
                .with_weight(weight)
                .with_option_mix(option_mix),
        );
    }
    mix
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--queries" => args.queries = value("--queries").parse().expect("--queries: integer"),
            "--qps" => args.qps = value("--qps").parse().expect("--qps: number"),
            "--repeat" => args.repeat = value("--repeat").parse().expect("--repeat: number"),
            "--slo-ms" => args.slo_ms = value("--slo-ms").parse().expect("--slo-ms: number"),
            "--max-chunk" => {
                args.max_chunk = value("--max-chunk").parse().expect("--max-chunk: integer");
                if args.max_chunk == 0 {
                    reject("--max-chunk must be at least 1".to_string());
                }
            }
            "--hosts" => {
                args.hosts = value("--hosts").parse().expect("--hosts: integer");
                // Each host needs a meaningful share of the fixed tiny-scale
                // fixture (DPUs, IVF lists, training vectors).
                if !(1..=16).contains(&args.hosts) {
                    reject(format!(
                        "--hosts {} out of range (the tiny-scale fixture supports 1..=16 hosts)",
                        args.hosts
                    ));
                }
            }
            "--engines" => {
                args.engines = value("--engines")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if args.engines.is_empty() {
                    reject("--engines: empty engine list".to_string());
                }
                for name in &args.engines {
                    if !KNOWN_ENGINES.contains(&name.as_str()) {
                        reject(format!(
                            "unknown engine '{name}' (known engines: {})",
                            KNOWN_ENGINES.join(", ")
                        ));
                    }
                }
            }
            "--policy" => {
                args.policies = match value("--policy").as_str() {
                    "fixed" => vec![Policy::Fixed],
                    "adaptive" => vec![Policy::Adaptive],
                    "both" => vec![Policy::Fixed, Policy::Adaptive],
                    other => reject(format!(
                        "unknown policy '{other}' (known policies: fixed, adaptive, both)"
                    )),
                };
            }
            "--tenants" => {
                args.tenants = value("--tenants");
                // Parse eagerly so a malformed spec exits 2 before any replay.
                let _ = parse_tenants(&args.tenants);
            }
            "--json" => args.json = Some(value("--json")),
            "--help" | "-h" => usage(),
            other => reject(format!("unknown flag {other} (try --help)")),
        }
    }
    args
}

/// The per-query options mix: two nprobe tiers at k=10 plus a k=20 tier
/// carrying a latency budget (exercises mixed-options batching end to end).
fn options_of(index: usize) -> QueryOptions {
    match index % 3 {
        0 => QueryOptions::new(10, 8),
        1 => QueryOptions::new(10, 4),
        _ => QueryOptions::new(20, 8).with_latency_budget(0.05),
    }
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "0.0".to_string()
    }
}

fn tenant_json(t: &upanns_serve::TenantReport) -> String {
    format!(
        concat!(
            "        {{\n",
            "          \"tenant\": \"{}\",\n",
            "          \"weight\": {},\n",
            "          \"slo_ms\": {},\n",
            "          \"completed\": {},\n",
            "          \"shed\": {},\n",
            "          \"p50_ms\": {},\n",
            "          \"p99_ms\": {},\n",
            "          \"slo_miss_fraction\": {},\n",
            "          \"meets_slo\": {},\n",
            "          \"final_max_batch\": {},\n",
            "          \"final_max_delay_ms\": {}\n",
            "        }}"
        ),
        t.name,
        t.weight,
        t.slo_p99_s.map_or_else(|| "null".to_string(), |s| json_num(s * 1e3)),
        t.completed,
        t.shed,
        json_num(t.p50() * 1e3),
        json_num(t.p99() * 1e3),
        json_num(t.slo_miss_fraction()),
        t.meets_slo(),
        t.final_batcher.max_batch,
        json_num(t.final_batcher.max_delay_s * 1e3),
    )
}

fn report_json(r: &ServiceReport, workload: &str) -> String {
    let tenants: Vec<String> = r.tenants.iter().map(tenant_json).collect();
    format!(
        concat!(
            "    {{\n",
            "      \"name\": \"{}\",\n",
            "      \"workload\": \"{}\",\n",
            "      \"policy\": \"{}\",\n",
            "      \"sustained_qps\": {},\n",
            "      \"p50_ms\": {},\n",
            "      \"p99_ms\": {},\n",
            "      \"mean_ms\": {},\n",
            "      \"slo_miss_fraction\": {},\n",
            "      \"meets_slo\": {},\n",
            "      \"all_tenants_meet_slo\": {},\n",
            "      \"completed\": {},\n",
            "      \"shed\": {},\n",
            "      \"cache_hit_rate\": {},\n",
            "      \"batches\": {},\n",
            "      \"mean_batch_size\": {},\n",
            "      \"dispatched_chunks\": {},\n",
            "      \"mean_chunk_size\": {},\n",
            "      \"final_max_batch\": {},\n",
            "      \"final_max_delay_ms\": {},\n",
            "      \"controller_adjustments\": {},\n",
            "      \"engine_busy_s\": {},\n",
            "      \"tenants\": [\n{}\n      ]\n",
            "    }}"
        ),
        r.engine,
        workload,
        r.policy,
        json_num(r.sustained_qps()),
        json_num(r.p50() * 1e3),
        json_num(r.p99() * 1e3),
        json_num(r.mean_latency() * 1e3),
        json_num(r.slo_miss_fraction()),
        r.meets_slo(),
        r.all_tenants_meet_slo(),
        r.completed,
        r.shed,
        json_num(r.cache_hit_rate()),
        r.batches(),
        json_num(r.mean_batch_size()),
        r.dispatched_chunks,
        json_num(r.mean_chunk_size()),
        r.final_batcher.max_batch,
        json_num(r.final_batcher.max_delay_s * 1e3),
        r.controller_adjustments,
        json_num(r.engine_busy_s),
        tenants.join(",\n"),
    )
}

fn main() {
    let args = parse_args();
    let work_scale = (MODELED_N / DATASET_N as f64).max(1.0);
    let slo_s = args.slo_ms / 1e3;
    assert!(slo_s > 0.0, "--slo-ms must be positive");
    assert!(args.hosts >= 1, "--hosts must be at least 1");

    eprintln!(
        "building fixture: n={DATASET_N}, nlist={NLIST}, dpus={DPUS}, \
         stream of {} queries at {} qps (repeat fraction {}, p99 SLO {} ms)",
        args.queries, args.qps, args.repeat, args.slo_ms
    );
    let dataset = SyntheticSpec::sift_like(DATASET_N)
        .with_clusters(16)
        .with_seed(7)
        .generate_with_meta();
    let index = IvfPqIndex::train(
        &dataset.vectors,
        &IvfPqParams::new(NLIST, PQ_M).with_train_size(2_400),
        5,
    );
    let history = WorkloadSpec::new(600).with_seed(8).generate(&dataset).queries;
    let stream = StreamSpec::new(args.queries, args.qps)
        .with_repeat_fraction(args.repeat)
        .with_slo_p99(slo_s)
        .generate(&dataset);

    // The fixed policy's close conditions: a low-latency batching window.
    // The adaptive controller starts from the same point and widens it only
    // while the observed p99 holds the SLO.
    let fixed_batcher = BatchFormerConfig {
        max_batch: 256,
        max_delay_s: 25e-3,
    };
    let service_config = ServiceConfig {
        queue_capacity: 512,
        batcher: fixed_batcher,
        cache_capacity: 512,
        cache_lookup_s: 2e-6,
        slo_p99_s: None, // the stream's annotation carries the target
        // The single-tenant sweep keeps whole-batch close-order dispatch:
        // with nobody to isolate, chunking only sheds batch amortization.
        max_chunk: None,
    };

    // Multihost shards: one IVFPQ index per host over a contiguous slice of
    // the corpus, with globally unique ids; each stored vector keeps the same
    // modeled scale, so the deployment models the same corpus.
    let shard_indexes: Vec<IvfPqIndex> = if args.engines.iter().any(|e| e == "multihost") {
        shard_ranges(dataset.vectors.len(), args.hosts)
            .iter()
            .map(|r| {
                let rows: Vec<usize> = r.clone().collect();
                let shard = dataset.vectors.gather(&rows);
                let nlist = (NLIST / args.hosts).max(16);
                let mut ix = IvfPqIndex::train_empty(
                    &shard,
                    &IvfPqParams::new(nlist, PQ_M).with_train_size(2_400 / args.hosts),
                    5,
                );
                ix.add(&shard, r.start as u64);
                ix
            })
            .collect()
    } else {
        Vec::new()
    };

    fn build_pim<'a>(
        index: &'a IvfPqIndex,
        config: UpAnnsConfig,
        dpus: usize,
        work_scale: f64,
        history: &annkit::vector::Dataset,
    ) -> UpAnnsEngine<'a> {
        UpAnnsBuilder::new(index)
            .with_config(config.with_work_scale(work_scale))
            .with_pim_config(PimConfig::with_dpus(dpus))
            .with_history(history, 8)
            .with_batch_capacity(BatchCapacity {
                batch_size: 64,
                nprobe: 8,
                max_k: 20,
            })
            .build()
    }
    let build_multihost = || {
        let engines: Vec<UpAnnsEngine<'_>> = shard_indexes
            .iter()
            .map(|ix| {
                build_pim(
                    ix,
                    UpAnnsConfig::upanns(),
                    DPUS / args.hosts,
                    work_scale,
                    &history,
                )
            })
            .collect();
        MultiHostUpAnns::new(engines, InterconnectModel::default())
    };

    // Replays one engine under every requested policy, rebuilding nothing:
    // the engine is threaded through `into_engine` between replays.
    let mut reports: Vec<ServiceReport> = Vec::new();
    let run = |engine_name: &str, reports: &mut Vec<ServiceReport>| {
        macro_rules! replay_policies {
            ($engine:expr) => {{
                let mut engine = $engine;
                for &policy in &args.policies {
                    let service = SearchService::new(engine, service_config);
                    let mut service = match policy {
                        Policy::Fixed => service,
                        Policy::Adaptive => service.with_policy(Box::new(
                            SloController::for_slo(slo_s),
                        )),
                    };
                    reports.push(service.replay(&stream, options_of));
                    engine = service.into_engine();
                }
                let _ = engine;
            }};
        }
        match engine_name {
            "cpu" => replay_policies!(CpuFaissEngine::new(&index).with_work_scale(work_scale)),
            "gpu" => replay_policies!(GpuFaissEngine::new(&index).with_work_scale(work_scale)),
            "pim-naive" => replay_policies!(build_pim(&index, UpAnnsConfig::pim_naive(), DPUS, work_scale, &history)),
            "upanns" => replay_policies!(build_pim(&index, UpAnnsConfig::upanns(), DPUS, work_scale, &history)),
            "multihost" => replay_policies!(build_multihost()),
            // parse_args rejects anything outside KNOWN_ENGINES and the
            // caller iterates exactly that list.
            other => unreachable!("engine '{other}' escaped --engines validation"),
        }
    };
    for name in KNOWN_ENGINES {
        if args.engines.iter().any(|e| e == name) {
            eprintln!("replaying {name} ...");
            run(name, &mut reports);
        }
    }

    // The multi-tenant scenario: several tenants share one UpANNS engine,
    // under the fixed global window, one global SloController (targeting the
    // tightest SLO in the mix — the only honest choice for a tenant-blind
    // controller), the per-tenant ControllerBank with whole-batch dispatch
    // (window-level isolation only), and the same bank under priority-
    // chunked engine dispatch (the head-of-line fix).
    let mut multi_reports: Vec<ServiceReport> = Vec::new();
    if args.engines.iter().any(|e| e == "upanns") {
        let tenant_mix = parse_tenants(&args.tenants);
        let tstream = tenant_mix.generate(&dataset);
        eprintln!(
            "replaying multi-tenant scenario on upanns ({} tenants, {} queries) ...",
            tstream.tenant_profiles.len(),
            tstream.len()
        );
        let tightest_slo = tstream.slo_p99_s.unwrap_or(slo_s);
        let mut scenario_policies: Vec<(&str, Option<usize>)> = Vec::new();
        if args.policies.contains(&Policy::Fixed) {
            scenario_policies.push(("fixed", None));
        }
        if args.policies.contains(&Policy::Adaptive) {
            scenario_policies.push(("adaptive-slo", None));
            scenario_policies.push(("adaptive-tenant", None));
            scenario_policies.push(("adaptive-tenant", Some(args.max_chunk)));
        }
        let mut engine = build_pim(&index, UpAnnsConfig::upanns(), DPUS, work_scale, &history);
        for (policy, max_chunk) in scenario_policies {
            let config = ServiceConfig {
                max_chunk,
                ..service_config
            };
            let service = SearchService::new(engine, config);
            let mut service = match policy {
                "fixed" => service,
                "adaptive-slo" => {
                    service.with_policy(Box::new(SloController::for_slo(tightest_slo)))
                }
                "adaptive-tenant" => service.with_policy(Box::new(ControllerBank::for_profiles(
                    &tstream.tenant_profiles,
                    fixed_batcher,
                ))),
                other => unreachable!("scenario policy '{other}'"),
            };
            multi_reports.push(service.replay_planned(&tstream));
            engine = service.into_engine();
        }
    }

    println!(
        "| engine | policy | sustained QPS | p50 (ms) | p99 (ms) | SLO miss | completed | shed | batches | chunks | mean batch | final window (ms) |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|---|---|");
    for r in &reports {
        println!(
            "| {} | {} | {:.1} | {:.3} | {:.3} | {:.1}% | {} | {} | {} | {} | {:.1} | {:.1} |",
            r.engine,
            r.policy,
            r.sustained_qps(),
            r.p50() * 1e3,
            r.p99() * 1e3,
            r.slo_miss_fraction() * 100.0,
            r.completed,
            r.shed,
            r.batches(),
            r.dispatched_chunks,
            r.mean_batch_size(),
            r.final_batcher.max_delay_s * 1e3,
        );
    }

    if !multi_reports.is_empty() {
        println!();
        println!("Multi-tenant scenario (upanns): {}", args.tenants);
        println!(
            "| policy | tenant | weight | SLO (ms) | completed | shed | p50 (ms) | p99 (ms) | SLO miss | meets | final window (ms) |"
        );
        println!("|---|---|---|---|---|---|---|---|---|---|---|");
        for r in &multi_reports {
            for t in &r.tenants {
                println!(
                    "| {} | {} | {} | {} | {} | {} | {:.3} | {:.3} | {:.1}% | {} | {:.1} |",
                    r.policy,
                    t.name,
                    t.weight,
                    t.slo_p99_s.map_or_else(|| "-".to_string(), |s| format!("{:.0}", s * 1e3)),
                    t.completed,
                    t.shed,
                    t.p50() * 1e3,
                    t.p99() * 1e3,
                    t.slo_miss_fraction() * 100.0,
                    if t.meets_slo() { "yes" } else { "NO" },
                    t.final_batcher.max_delay_s * 1e3,
                );
            }
        }
    }

    if let Some(path) = args.json {
        let engines: Vec<String> = reports
            .iter()
            .map(|r| report_json(r, "single"))
            .chain(multi_reports.iter().map(|r| report_json(r, "multi")))
            .collect();
        let json = format!(
            concat!(
                "{{\n",
                "  \"schema\": \"upanns-serving-bench-v4\",\n",
                "  \"config\": {{\n",
                "    \"dataset_n\": {},\n",
                "    \"nlist\": {},\n",
                "    \"dpus\": {},\n",
                "    \"work_scale\": {},\n",
                "    \"num_queries\": {},\n",
                "    \"offered_qps\": {},\n",
                "    \"repeat_fraction\": {},\n",
                "    \"slo_p99_ms\": {},\n",
                "    \"hosts\": {},\n",
                "    \"max_chunk\": {},\n",
                "    \"queue_capacity\": {},\n",
                "    \"fixed_max_batch\": {},\n",
                "    \"fixed_max_delay_ms\": {},\n",
                "    \"cache_capacity\": {},\n",
                "    \"tenants\": \"{}\"\n",
                "  }},\n",
                "  \"engines\": [\n{}\n  ]\n",
                "}}\n"
            ),
            DATASET_N,
            NLIST,
            DPUS,
            json_num(work_scale),
            args.queries,
            json_num(args.qps),
            json_num(args.repeat),
            json_num(args.slo_ms),
            args.hosts,
            args.max_chunk,
            service_config.queue_capacity,
            fixed_batcher.max_batch,
            json_num(fixed_batcher.max_delay_s * 1e3),
            service_config.cache_capacity,
            args.tenants,
            engines.join(",\n"),
        );
        std::fs::write(&path, json).expect("write JSON baseline");
        eprintln!("wrote {path}");
    }
}
