//! Fixture: a directive without a reason is rejected.

// lint: allow(no-wall-clock)
pub fn nop() {}
