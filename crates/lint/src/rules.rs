//! The rule set. Each rule guards one documented workspace invariant (see
//! ARCHITECTURE.md, "Static invariants"):
//!
//! * **no-wall-clock** — `Instant`/`SystemTime` are banned outside the
//!   allowlisted vendor timer shim and the `crates/runtime/` subtree (the
//!   threaded runtime is the one subsystem whose *job* is real time), so
//!   the replay clock stays the only time source the model crates can
//!   observe.
//! * **no-ambient-rng** — entropy-seeded RNG constructors are banned outside
//!   tests; every production stream must derive from an explicit seed.
//! * **no-unordered-iteration** — iterating a `HashMap`/`HashSet` binding in
//!   `crates/serve` or `crates/runtime` without a subsequent sort, which
//!   would let hash-order leak into byte-diffed reports and answer maps.
//! * **vendor-api-surface** — qualified paths and `use` imports into the
//!   vendored stubs must appear in that stub's `API.txt` manifest, so the
//!   real registry crates can swap in without code changes.
//! * **no-unwrap-in-hot-path** — `.unwrap()`/`.expect()` in the serve
//!   dispatch/service/batcher files, where a panic aborts live queries.
//! * **no-unsafe-outside-simd** — the `unsafe` keyword is banned everywhere
//!   except the one sanctioned SIMD module (`crates/annkit/src/simd.rs`),
//!   whose intrinsics are proven bitwise-equal to scalar references by the
//!   equivalence proptests; `unsafe` anywhere else dodges that proof
//!   obligation and the crate-root `deny(unsafe_code)` reasoning.
//!
//! Rules run over the lexed token stream ([`crate::lexer`]) — never raw
//! text — so names inside comments, docs and string literals are invisible
//! to them.

use crate::lexer::{LexedFile, Token, TokenKind};

/// One rule violation, keyed by canonical rule name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Canonical rule name, or `directive` for directive hygiene findings.
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// A lexed file plus its workspace-relative path.
pub struct FileInput<'a> {
    /// Relative path with forward slashes (e.g. `crates/serve/src/cache.rs`).
    pub rel: &'a str,
    /// The lexed contents.
    pub lexed: &'a LexedFile,
}

/// Per-stub vendor API manifests, loaded from `vendor/<stub>/API.txt`.
/// `None` means the manifest file is absent (reported at first use site).
pub struct VendorManifests {
    /// `(stub crate name, manifest entries)` pairs, in declaration order.
    pub stubs: Vec<(String, Option<Vec<String>>)>,
}

/// Exact files allowed to touch wall-clock types: the vendored criterion
/// shim is the one place benchmarking genuinely needs real elapsed time.
const WALL_CLOCK_ALLOWLIST: &[&str] = &["vendor/criterion/src/lib.rs"];

/// Path *prefixes* allowed to touch wall-clock types: `upanns-runtime`
/// (`crates/runtime/`) is the threaded serving runtime — driving real
/// threads against real deadlines is its entire purpose, and its
/// determinism story is the logical-trace twin (byte-diffed against the
/// replay in CI), not clock abstinence. Everything outside these prefixes
/// stays banned so the simulation crates can never observe time.
const WALL_CLOCK_ALLOWED_PREFIXES: &[&str] = &["crates/runtime/"];

/// Entropy-tapping constructors; seeded construction is always fine.
const AMBIENT_RNG: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "ThreadRng",
];

/// Unordered-collection methods that expose hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Idents whose appearance shortly after an unordered iteration restores a
/// deterministic order. `min_by_key`/`max_by_key` are deliberately absent:
/// they break ties in encounter order, which *is* hash order.
const SORT_FAMILY: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// How many tokens after an iteration site to scan for a sort.
const SORT_WINDOW: usize = 80;

/// Serve files whose panic on a bad query would abort unrelated tenants.
const HOT_PATH_FILES: &[&str] = &[
    "crates/serve/src/dispatch.rs",
    "crates/serve/src/service.rs",
    "crates/serve/src/batcher.rs",
];

/// The only files allowed to contain `unsafe`: the sanctioned SIMD module,
/// where every unsafe block is an `std::arch` intrinsic call whose
/// preconditions are established by runtime feature detection and whose
/// results are proven bitwise-equal to scalar references.
const UNSAFE_ALLOWLIST: &[&str] = &["crates/annkit/src/simd.rs"];

/// Runs every rule over one file, returning raw (pre-directive) violations.
pub fn check_file(input: &FileInput<'_>, vendor: &VendorManifests) -> Vec<Violation> {
    let mut out = Vec::new();
    let test_ranges = test_line_ranges(input.lexed);
    no_wall_clock(input, &mut out);
    no_ambient_rng(input, &test_ranges, &mut out);
    no_unordered_iteration(input, &mut out);
    vendor_api_surface(input, vendor, &mut out);
    no_unwrap_in_hot_path(input, &test_ranges, &mut out);
    no_unsafe_outside_simd(input, &mut out);
    out
}

// ---------------------------------------------------------------------------
// `#[cfg(test)]` region detection
// ---------------------------------------------------------------------------

/// Line ranges (inclusive) of items gated behind `#[cfg(test)]`. Detection
/// is token-based: an attribute whose idents include `cfg` and `test` but
/// not `not`, followed by an item consumed to its matching closing brace
/// (or terminating semicolon).
fn test_line_ranges(lexed: &LexedFile) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        // Collect idents inside the attribute's brackets.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut idents: Vec<&str> = Vec::new();
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == TokenKind::Ident {
                idents.push(&t.text);
            }
            j += 1;
        }
        let is_cfg_test = idents.contains(&"cfg")
            && idents.contains(&"test")
            && !idents.contains(&"not");
        if !is_cfg_test {
            i = j + 1;
            continue;
        }
        // Consume the gated item: skip any further attributes, then match
        // braces to the item's end (or stop at a bare semicolon).
        let mut k = j + 1;
        let mut brace_depth = 0usize;
        let mut end_line = start_line;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct("{") {
                brace_depth += 1;
            } else if t.is_punct("}") {
                brace_depth = brace_depth.saturating_sub(1);
                if brace_depth == 0 {
                    end_line = t.line;
                    break;
                }
            } else if t.is_punct(";") && brace_depth == 0 {
                end_line = t.line;
                break;
            }
            end_line = t.line;
            k += 1;
        }
        ranges.push((start_line, end_line));
        i = k + 1;
    }
    ranges
}

fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

fn no_wall_clock(input: &FileInput<'_>, out: &mut Vec<Violation>) {
    if WALL_CLOCK_ALLOWLIST.contains(&input.rel)
        || WALL_CLOCK_ALLOWED_PREFIXES
            .iter()
            .any(|p| input.rel.starts_with(p))
    {
        return;
    }
    for t in &input.lexed.tokens {
        if t.kind == TokenKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
            out.push(Violation {
                rule: "no-wall-clock",
                file: input.rel.to_string(),
                line: t.line,
                message: format!(
                    "wall-clock type `{}` is banned; the replay clock (crates/serve) must be \
                     the only observable time source",
                    t.text
                ),
            });
        }
    }
}

fn no_ambient_rng(input: &FileInput<'_>, test_ranges: &[(u32, u32)], out: &mut Vec<Violation>) {
    // Integration-test trees are exempt wholesale; unit tests are exempt
    // via their `#[cfg(test)]` ranges.
    if input.rel.starts_with("tests/") || input.rel.contains("/tests/") {
        return;
    }
    for t in &input.lexed.tokens {
        if t.kind == TokenKind::Ident
            && AMBIENT_RNG.contains(&t.text.as_str())
            && !in_ranges(test_ranges, t.line)
        {
            out.push(Violation {
                rule: "no-ambient-rng",
                file: input.rel.to_string(),
                line: t.line,
                message: format!(
                    "`{}` taps ambient entropy; production randomness must come from an \
                     explicit seed (e.g. `SmallRng::seed_from_u64`)",
                    t.text
                ),
            });
        }
    }
}

fn no_unordered_iteration(input: &FileInput<'_>, out: &mut Vec<Violation>) {
    // The serving/runtime layers plus the live-index modules: snapshot
    // installs, mutation replay and compaction planning all feed the
    // byte-reproducible twin contract, so iteration order there must be
    // deterministic too.
    if !(input.rel.starts_with("crates/serve/")
        || input.rel.starts_with("crates/runtime/")
        || input.rel == "crates/annkit/src/mutation.rs"
        || input.rel == "crates/core/src/compaction.rs")
    {
        return;
    }
    let toks = &input.lexed.tokens;

    // Pass 1: names bound to HashMap/HashSet — struct fields
    // (`entries: HashMap<..>`), lets with annotations, and
    // `name = HashMap::new()` initialisers. `&`/`mut`/lifetimes between the
    // separator and the type are skipped.
    let mut unordered: Vec<&str> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        let mut j = i;
        while j > 0 {
            let p = &toks[j - 1];
            let skippable = p.is_punct("&")
                || p.is_ident("mut")
                || (p.kind == TokenKind::Literal && p.text.starts_with('\''));
            if skippable {
                j -= 1;
            } else {
                break;
            }
        }
        if j == 0 {
            continue;
        }
        let sep = &toks[j - 1];
        if (sep.is_punct(":") || sep.is_punct("=")) && j >= 2 {
            let name = &toks[j - 2];
            if name.kind == TokenKind::Ident && !unordered.contains(&name.text.as_str()) {
                unordered.push(&name.text);
            }
        }
    }
    if unordered.is_empty() {
        return;
    }

    let flag = |name: &str, idx: usize, out: &mut Vec<Violation>| {
        let sorted_after = toks[idx..toks.len().min(idx + SORT_WINDOW)]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && SORT_FAMILY.contains(&t.text.as_str()));
        if !sorted_after {
            out.push(Violation {
                rule: "no-unordered-iteration",
                file: input.rel.to_string(),
                line: toks[idx].line,
                message: format!(
                    "iterating unordered collection `{name}` without a subsequent sort lets \
                     hash order leak into serve output (byte-diffed bench records depend on \
                     deterministic ordering)"
                ),
            });
        }
    };

    // Pass 2a: method-call sites `name.iter()` / `self.name.keys()` ...
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || !unordered.contains(&t.text.as_str()) {
            continue;
        }
        let dot = toks.get(i + 1).is_some_and(|p| p.is_punct("."));
        let method = toks.get(i + 2);
        let call = toks.get(i + 3).is_some_and(|p| p.is_punct("("));
        if dot && call {
            if let Some(m) = method {
                if m.kind == TokenKind::Ident && ITER_METHODS.contains(&m.text.as_str()) {
                    flag(&t.text, i, out);
                }
            }
        }
    }

    // Pass 2b: direct `for x in [&][mut] [self.]name {` iteration.
    for i in 0..toks.len() {
        if !toks[i].is_ident("for") {
            continue;
        }
        // Find the `in` belonging to this loop header (bounded scan).
        let Some(in_idx) = (i + 1..toks.len().min(i + 24)).find(|&k| toks[k].is_ident("in"))
        else {
            continue;
        };
        let mut k = in_idx + 1;
        while k < toks.len() && (toks[k].is_punct("&") || toks[k].is_ident("mut")) {
            k += 1;
        }
        if k + 1 < toks.len() && toks[k].is_ident("self") && toks[k + 1].is_punct(".") {
            k += 2;
        }
        let Some(name) = toks.get(k) else { continue };
        if name.kind == TokenKind::Ident
            && unordered.contains(&name.text.as_str())
            && toks.get(k + 1).is_some_and(|p| p.is_punct("{"))
        {
            flag(&name.text, k, out);
        }
    }
}

fn vendor_api_surface(input: &FileInput<'_>, vendor: &VendorManifests, out: &mut Vec<Violation>) {
    // The stubs themselves may use internal items freely.
    if input.rel.starts_with("vendor/") {
        return;
    }
    let toks = &input.lexed.tokens;
    let stub_names: Vec<&str> = vendor.stubs.iter().map(|(n, _)| n.as_str()).collect();
    let mut paths: Vec<(String, u32)> = Vec::new();

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("use") {
            // Parse the whole use statement as a use-tree.
            let end = (i + 1..toks.len())
                .find(|&k| toks[k].is_punct(";"))
                .unwrap_or(toks.len());
            let mut pos = i + 1;
            collect_use_tree(&toks[..end], &mut pos, String::new(), &mut paths);
            i = end + 1;
            continue;
        }
        // Qualified expression/type path starting at a stub crate name.
        if t.kind == TokenKind::Ident
            && stub_names.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|p| p.is_punct("::"))
        {
            let preceded_by_path = i > 0 && (toks[i - 1].is_punct("::") || toks[i - 1].is_punct("."));
            if !preceded_by_path {
                let mut path = t.text.clone();
                let mut k = i + 1;
                while toks.get(k).is_some_and(|p| p.is_punct("::"))
                    && toks.get(k + 1).is_some_and(|s| s.kind == TokenKind::Ident)
                {
                    path.push_str("::");
                    path.push_str(&toks[k + 1].text);
                    k += 2;
                }
                paths.push((path, t.line));
                i = k;
                continue;
            }
        }
        i += 1;
    }

    for (path, line) in paths {
        let Some(root) = path.split("::").next() else { continue };
        let Some((_, manifest)) = vendor.stubs.iter().find(|(n, _)| n == root) else {
            continue;
        };
        match manifest {
            None => out.push(Violation {
                rule: "vendor-api-surface",
                file: input.rel.to_string(),
                line,
                message: format!(
                    "`{path}` targets vendored stub `{root}` but vendor/{root}/API.txt is missing"
                ),
            }),
            Some(entries) => {
                if !path_allowed(&path, entries) {
                    out.push(Violation {
                        rule: "vendor-api-surface",
                        file: input.rel.to_string(),
                        line,
                        message: format!(
                            "`{path}` is not in vendor/{root}/API.txt; either the call site \
                             uses a stub-only API or the manifest needs a documented entry"
                        ),
                    });
                }
            }
        }
    }
}

/// A used path is allowed when it equals a manifest entry, descends from
/// one (`rand::rngs::SmallRng` under entry `rand::rngs`), or is an ancestor
/// of one (`use proptest::prelude` with entry `proptest::prelude::*` —
/// ancestors are importable module handles for allowed leaves).
fn path_allowed(path: &str, entries: &[String]) -> bool {
    entries.iter().any(|e| {
        path == e
            || path.strip_prefix(e.as_str()).is_some_and(|r| r.starts_with("::"))
            || e.strip_prefix(path).is_some_and(|r| r.starts_with("::"))
    })
}

/// Expands a use-tree token slice into full paths. Handles nested groups
/// (`use a::{b, c::{d, e}}`), glob imports (recorded as the glob's parent
/// path) and `as` renames (the alias ident is skipped).
fn collect_use_tree(toks: &[Token], pos: &mut usize, prefix: String, out: &mut Vec<(String, u32)>) {
    let mut segs: Vec<String> = if prefix.is_empty() { Vec::new() } else { vec![prefix] };
    let mut line = toks.get(*pos).map(|t| t.line).unwrap_or(0);
    while *pos < toks.len() {
        let t = &toks[*pos];
        if t.kind == TokenKind::Ident && t.text != "as" {
            if segs.is_empty() {
                line = t.line;
            }
            segs.push(t.text.clone());
            *pos += 1;
            if toks.get(*pos).is_some_and(|p| p.is_punct("::")) {
                *pos += 1;
                continue;
            }
            // Optional rename: `X as Y` — skip the alias.
            if toks.get(*pos).is_some_and(|p| p.is_ident("as")) {
                *pos += 2;
            }
            out.push((segs.join("::"), line));
            return;
        }
        if t.is_punct("*") {
            *pos += 1;
            out.push((segs.join("::"), line));
            return;
        }
        if t.is_punct("{") {
            *pos += 1;
            loop {
                if toks.get(*pos).is_none() || toks[*pos].is_punct("}") {
                    *pos += 1;
                    return;
                }
                collect_use_tree(toks, pos, segs.join("::"), out);
                if toks.get(*pos).is_some_and(|p| p.is_punct(",")) {
                    *pos += 1;
                }
            }
        }
        // `pub`, visibility parens, leading `::` — skip.
        *pos += 1;
    }
    if !segs.is_empty() {
        out.push((segs.join("::"), line));
    }
}

fn no_unwrap_in_hot_path(
    input: &FileInput<'_>,
    test_ranges: &[(u32, u32)],
    out: &mut Vec<Violation>,
) {
    if !HOT_PATH_FILES.contains(&input.rel) {
        return;
    }
    let toks = &input.lexed.tokens;
    for i in 1..toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|p| p.is_punct("("))
            && !in_ranges(test_ranges, t.line)
        {
            out.push(Violation {
                rule: "no-unwrap-in-hot-path",
                file: input.rel.to_string(),
                line: t.line,
                message: format!(
                    "`.{}()` in the serve hot path panics the whole service on a bad query; \
                     handle the `None`/`Err` arm or add a reasoned directive",
                    t.text
                ),
            });
        }
    }
}

fn no_unsafe_outside_simd(input: &FileInput<'_>, out: &mut Vec<Violation>) {
    if UNSAFE_ALLOWLIST.contains(&input.rel) {
        return;
    }
    for t in &input.lexed.tokens {
        if t.kind == TokenKind::Ident && t.text == "unsafe" {
            out.push(Violation {
                rule: "no-unsafe-outside-simd",
                file: input.rel.to_string(),
                line: t.line,
                message: "`unsafe` is confined to crates/annkit/src/simd.rs, where every \
                          intrinsic is proven bitwise-equal to a scalar reference; move the \
                          code there or find a safe formulation"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn vendor_none() -> VendorManifests {
        VendorManifests { stubs: Vec::new() }
    }

    fn check(rel: &str, src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        check_file(&FileInput { rel, lexed: &lexed }, &vendor_none())
    }

    #[test]
    fn wall_clock_flagged_outside_allowlist() {
        let v = check("crates/core/src/lib.rs", "use std::time::Instant;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-wall-clock");
        assert_eq!(v[0].line, 1);

        let v = check("vendor/criterion/src/lib.rs", "use std::time::Instant;\n");
        assert!(v.is_empty());
    }

    #[test]
    fn wall_clock_scope_admits_the_runtime_subtree_only() {
        let src = "use std::time::Instant;\nfn now() -> Instant { Instant::now() }\n";
        // Anywhere under crates/runtime/ is in scope, including the binary.
        assert!(check("crates/runtime/src/pipeline.rs", src).is_empty());
        assert!(check("crates/runtime/src/bin/serve.rs", src).is_empty());
        // Prefix match is on the path, not the crate name: a lookalike
        // directory elsewhere stays banned.
        assert_eq!(check("crates/serve/src/runtime.rs", src)[0].rule, "no-wall-clock");
        assert_eq!(check("crates/core/src/lib.rs", src)[0].rule, "no-wall-clock");
    }

    #[test]
    fn unordered_iteration_scope_covers_the_runtime() {
        let bad = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &S) { for (k, v) in s.m.iter() { use_it(k, v); } }\n";
        let v = check("crates/runtime/src/pipeline.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unordered-iteration");
    }

    #[test]
    fn ambient_rng_skips_cfg_test_and_test_trees() {
        let prod = "fn f() { let r = rand::thread_rng(); }\n";
        assert_eq!(check("crates/core/src/lib.rs", prod)[0].rule, "no-ambient-rng");
        assert!(check("crates/core/tests/x.rs", prod).is_empty());

        let gated = "#[cfg(test)]\nmod tests {\n  fn f() { let r = rand::thread_rng(); }\n}\n";
        assert!(check("crates/core/src/lib.rs", gated).is_empty());
    }

    #[test]
    fn unordered_iteration_needs_a_sort() {
        let bad = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &S) { for (k, v) in s.m.iter() { use_it(k, v); } }\n";
        let v = check("crates/serve/src/report.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unordered-iteration");

        let good = "struct S { m: HashMap<u32, u32> }\n\
                    fn f(s: &S) { let mut rows: Vec<_> = s.m.iter().collect();\n\
                    rows.sort_by_key(|(k, _)| **k); }\n";
        assert!(check("crates/serve/src/report.rs", good).is_empty());

        // Out of scope: same code elsewhere is not serve output.
        assert!(check("crates/core/src/lib.rs", bad).is_empty());
    }

    #[test]
    fn for_loop_over_unordered_binding_is_flagged() {
        let bad = "fn f() { let mut seen: HashSet<u32> = HashSet::new();\n\
                   for s in &seen { touch(s); } }\n";
        let v = check("crates/serve/src/dispatch_helpers.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn vendor_paths_checked_against_manifest() {
        let vendor = VendorManifests {
            stubs: vec![(
                "rand".to_string(),
                Some(vec!["rand::Rng".to_string(), "rand::rngs::SmallRng".to_string()]),
            )],
        };
        let src = "use rand::{Rng, SeedableRng};\nfn f() { rand::rngs::SmallRng::seed_from_u64(1); }\n";
        let lexed = lex(src);
        let v = check_file(
            &FileInput { rel: "crates/core/src/lib.rs", lexed: &lexed },
            &vendor,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("rand::SeedableRng"), "{}", v[0].message);
    }

    #[test]
    fn missing_manifest_is_reported_at_use_site() {
        let vendor = VendorManifests { stubs: vec![("proptest".to_string(), None)] };
        let lexed = lex("use proptest::prelude::*;\n");
        let v = check_file(
            &FileInput { rel: "tests/properties.rs", lexed: &lexed },
            &vendor,
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("API.txt is missing"), "{}", v[0].message);
    }

    #[test]
    fn unsafe_confined_to_the_simd_module() {
        let src = "fn f(p: *const f32) -> f32 { unsafe { *p } }\n";
        let v = check("crates/core/src/kernel.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unsafe-outside-simd");
        assert_eq!(v[0].line, 1);

        // The sanctioned module is exempt.
        assert!(check("crates/annkit/src/simd.rs", src).is_empty());

        // Token-based: `unsafe` in comments or strings is invisible.
        let commented = "// this is unsafe in prose only\nfn f() {}\n";
        assert!(check("crates/core/src/kernel.rs", commented).is_empty());
    }

    #[test]
    fn unwrap_flagged_only_in_hot_path_files() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let v = check("crates/serve/src/dispatch.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unwrap-in-hot-path");

        assert!(check("crates/serve/src/cache.rs", src).is_empty());

        let gated = "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { Some(1).unwrap(); }\n}\n";
        assert!(check("crates/serve/src/dispatch.rs", gated).is_empty());
    }
}
