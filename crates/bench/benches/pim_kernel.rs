//! Criterion microbenchmark of the PIM simulator itself: MRAM cost-model
//! evaluation, DMA-charged tasklet reads and a full parallel-region launch.
//! These quantify the *simulation* overhead per modeled unit of work, which
//! bounds how large an experiment the harness can run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pim_sim::config::PimConfig;
use pim_sim::cost::CostModel;
use pim_sim::host::PimSystem;

fn bench_cost_model(c: &mut Criterion) {
    let cm = CostModel::default();
    let mut group = c.benchmark_group("cost_model");
    group.throughput(Throughput::Elements(2048));
    group.bench_function("mram_transfer_cycles_sweep", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for bytes in (8..=2048).step_by(8) {
                total += cm.mram_transfer_cycles(bytes);
            }
            std::hint::black_box(total)
        });
    });
    group.bench_function("region_compute_cycles", |b| {
        let per_tasklet: Vec<u64> = (0..24).map(|i| 1_000 + i * 37).collect();
        b.iter(|| std::hint::black_box(cm.region_compute_cycles(&per_tasklet)));
    });
    group.finish();
}

fn bench_kernel_launch(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_launch");
    group.sample_size(20);
    for &dpus in &[16usize, 128] {
        let mut sys = PimSystem::new(PimConfig::with_dpus(dpus).scaled_to(dpus));
        let mut addrs = Vec::new();
        for d in 0..dpus {
            let addr = sys.mram_alloc(d, 64 * 1024).unwrap();
            sys.dpu_mut(d)
                .mram_mut()
                .write(addr, &vec![7u8; 64 * 1024])
                .unwrap();
            addrs.push(addr);
        }
        group.throughput(Throughput::Elements(dpus as u64));
        group.bench_with_input(BenchmarkId::from_parameter(dpus), &dpus, |b, &dpus| {
            b.iter(|| {
                let report = sys.execute("bench", |ctx| {
                    let addr = addrs[ctx.dpu_id()];
                    ctx.parallel("scan", 11, |t| {
                        for chunk in 0..16usize {
                            let _ = t.mram_read(addr + chunk * 256, 256);
                            t.charge_arith(256, 0);
                        }
                    });
                });
                std::hint::black_box((report.max_dpu_seconds, dpus))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cost_model, bench_kernel_launch);
criterion_main!(benches);
