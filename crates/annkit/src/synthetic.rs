//! Synthetic dataset generators standing in for SIFT1B / DEEP1B / SPACEV1B.
//!
//! The real billion-scale datasets are unavailable in this environment, so we
//! generate reduced-scale datasets that reproduce the statistical properties
//! the UpANNS evaluation actually depends on:
//!
//! 1. **Cluster structure** — vectors are drawn around well-separated cluster
//!    centers so IVF partitioning is meaningful.
//! 2. **Cluster-size skew** — cluster populations follow a power law
//!    (Figure 4b shows up to 10⁶× size imbalance in SPACEV1B).
//! 3. **Dimensional profile** — SIFT-like: 128-d non-negative "histogram"
//!    coordinates; DEEP-like: 96-d roughly normalized CNN embeddings;
//!    SPACEV-like: 100-d signed int8-ranged text embeddings. The paper
//!    encodes them with M = 16 / 12 / 20 sub-quantizers respectively.
//! 4. **Code co-occurrence** — a tunable fraction of vectors in each cluster
//!    share identical sub-vector patterns on a run of consecutive subspaces,
//!    so their PQ codes contain frequently co-occurring element combinations
//!    (the property Opt3 exploits; cf. the (1, 15, 26) triplet appearing in
//!    5.7 % of SIFT1B vectors).

use crate::vector::Dataset;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which billion-scale dataset the generator mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// SIFT1B: 128-d local image descriptors, non-negative, roughly in
    /// `[0, 255]`.
    SiftLike,
    /// DEEP1B: 96-d deep CNN descriptors, centered, roughly unit norm.
    DeepLike,
    /// SPACEV1B: 100-d text descriptors, signed int8 value range.
    SpacevLike,
}

impl DatasetKind {
    /// Vector dimensionality of the mimicked dataset.
    pub fn dim(self) -> usize {
        match self {
            DatasetKind::SiftLike => 128,
            DatasetKind::DeepLike => 96,
            DatasetKind::SpacevLike => 100,
        }
    }

    /// Number of PQ sub-quantizers the paper uses for this dataset.
    pub fn pq_m(self) -> usize {
        match self {
            DatasetKind::SiftLike => 16,
            DatasetKind::DeepLike => 12,
            DatasetKind::SpacevLike => 20,
        }
    }

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::SiftLike => "SIFT-like",
            DatasetKind::DeepLike => "DEEP-like",
            DatasetKind::SpacevLike => "SPACEV-like",
        }
    }

    /// Scale of per-coordinate values (cluster-center spread).
    fn center_scale(self) -> f32 {
        match self {
            DatasetKind::SiftLike => 128.0,
            DatasetKind::DeepLike => 1.0,
            DatasetKind::SpacevLike => 64.0,
        }
    }

    /// Within-cluster noise scale.
    fn noise_scale(self) -> f32 {
        match self {
            DatasetKind::SiftLike => 18.0,
            DatasetKind::DeepLike => 0.15,
            DatasetKind::SpacevLike => 9.0,
        }
    }

    /// Clamp range applied to generated coordinates.
    fn clamp(self) -> (f32, f32) {
        match self {
            DatasetKind::SiftLike => (0.0, 255.0),
            DatasetKind::DeepLike => (-4.0, 4.0),
            DatasetKind::SpacevLike => (-128.0, 127.0),
        }
    }

    /// All three kinds, in the order the paper's figures list them.
    pub fn all() -> [DatasetKind; 3] {
        [
            DatasetKind::DeepLike,
            DatasetKind::SiftLike,
            DatasetKind::SpacevLike,
        ]
    }
}

/// Specification of a synthetic dataset.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Which dataset profile to mimic.
    pub kind: DatasetKind,
    /// Number of base vectors to generate.
    pub n: usize,
    /// Number of ground-truth generative clusters.
    pub clusters: usize,
    /// Power-law exponent controlling cluster-size skew (0 = uniform;
    /// ~1.0 reproduces the heavy skew of Figure 4b at reduced scale).
    pub size_skew: f64,
    /// Fraction of vectors per cluster that carry a shared sub-vector
    /// pattern, producing co-occurring PQ codes (Opt3's prerequisite).
    pub cooccurrence_rate: f64,
    /// Number of consecutive PQ subspaces covered by each shared pattern.
    pub pattern_len: usize,
    /// RNG seed; the generator is fully deterministic given the spec.
    pub seed: u64,
}

impl SyntheticSpec {
    /// SIFT1B-like spec with `n` vectors and defaults tuned to reproduce the
    /// paper's skew and co-occurrence properties at reduced scale.
    pub fn sift_like(n: usize) -> Self {
        Self::new(DatasetKind::SiftLike, n)
    }

    /// DEEP1B-like spec with `n` vectors.
    pub fn deep_like(n: usize) -> Self {
        Self::new(DatasetKind::DeepLike, n)
    }

    /// SPACEV1B-like spec with `n` vectors.
    pub fn spacev_like(n: usize) -> Self {
        Self::new(DatasetKind::SpacevLike, n)
    }

    /// Generic constructor with default knobs.
    pub fn new(kind: DatasetKind, n: usize) -> Self {
        Self {
            kind,
            n,
            clusters: 64,
            size_skew: 0.9,
            cooccurrence_rate: 0.35,
            pattern_len: 3,
            seed: 0xC0FFEE,
        }
    }

    /// Overrides the number of generative clusters.
    pub fn with_clusters(mut self, clusters: usize) -> Self {
        self.clusters = clusters;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the cluster-size skew exponent.
    pub fn with_size_skew(mut self, skew: f64) -> Self {
        self.size_skew = skew;
        self
    }

    /// Overrides the co-occurrence injection rate.
    pub fn with_cooccurrence(mut self, rate: f64) -> Self {
        self.cooccurrence_rate = rate;
        self
    }

    /// Generates the dataset (vectors only).
    pub fn generate(&self) -> Dataset {
        self.generate_with_meta().vectors
    }

    /// Generates the dataset together with its ground-truth metadata.
    pub fn generate_with_meta(&self) -> SyntheticDataset {
        assert!(self.n > 0, "n must be positive");
        assert!(self.clusters > 0 && self.clusters <= self.n, "invalid cluster count");
        let dim = self.kind.dim();
        let mut rng = SmallRng::seed_from_u64(self.seed);

        // Cluster centers: well separated in the kind's value range.
        let mut centers = Dataset::with_capacity(dim, self.clusters);
        let scale = self.kind.center_scale();
        let mut cv = vec![0.0f32; dim];
        for _ in 0..self.clusters {
            for x in cv.iter_mut() {
                *x = rng.gen_range(-1.0f32..1.0) * scale + scale.max(1.0) * 0.5;
            }
            centers.push(&cv);
        }

        // Power-law cluster populations.
        let sizes = power_law_sizes(self.n, self.clusters, self.size_skew, &mut rng);

        // Shared sub-vector patterns per cluster (for code co-occurrence).
        let m = self.kind.pq_m();
        let dsub = dim / m;
        let pattern_len = self.pattern_len.min(m);
        let noise = self.kind.noise_scale();
        let (lo, hi) = self.kind.clamp();

        let mut vectors = Dataset::with_capacity(dim, self.n);
        let mut cluster_of = Vec::with_capacity(self.n);
        let mut v = vec![0.0f32; dim];

        for (c, &size) in sizes.iter().enumerate() {
            // Each cluster gets one dominant pattern: a fixed offset applied to
            // `pattern_len` consecutive subspaces starting at a cluster-specific
            // position. Vectors carrying the pattern have *zero* noise on those
            // subspaces, so their residuals (and hence PQ codes) coincide there.
            let pattern_start = (c * 7) % m.saturating_sub(pattern_len).max(1);
            let pattern: Vec<f32> = (0..pattern_len * dsub)
                .map(|_| rng.gen_range(-1.0f32..1.0) * noise)
                .collect();

            for _ in 0..size {
                let center = centers.vector(c);
                for (j, x) in v.iter_mut().enumerate() {
                    *x = (center[j] + rng.gen_range(-1.0f32..1.0) * noise).clamp(lo, hi);
                }
                if rng.gen_bool(self.cooccurrence_rate) {
                    for (p, &pat) in pattern.iter().enumerate() {
                        let j = pattern_start * dsub + p;
                        v[j] = (centers.vector(c)[j] + pat).clamp(lo, hi);
                    }
                }
                vectors.push(&v);
                cluster_of.push(c);
            }
        }

        SyntheticDataset {
            kind: self.kind,
            vectors,
            centers,
            cluster_of,
            cluster_sizes: sizes,
        }
    }
}

/// A generated dataset plus its ground-truth generative structure.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// Which dataset profile was mimicked.
    pub kind: DatasetKind,
    /// The generated base vectors.
    pub vectors: Dataset,
    /// True generative cluster centers.
    pub centers: Dataset,
    /// True cluster id of each vector.
    pub cluster_of: Vec<usize>,
    /// Number of vectors generated per cluster.
    pub cluster_sizes: Vec<usize>,
}

impl SyntheticDataset {
    /// Ratio of the largest to the smallest non-empty cluster — the size-skew
    /// statistic plotted in Figure 4b.
    pub fn size_skew_ratio(&self) -> f64 {
        let max = self.cluster_sizes.iter().copied().max().unwrap_or(0);
        let min = self
            .cluster_sizes
            .iter()
            .copied()
            .filter(|&s| s > 0)
            .min()
            .unwrap_or(1);
        max as f64 / min as f64
    }
}

/// Allocates `n` items over `k` buckets with populations proportional to
/// `1/(rank+1)^skew`, guaranteeing every bucket gets at least one item when
/// `n >= k`. Bucket ranks are shuffled so that cluster id does not correlate
/// with size.
fn power_law_sizes(n: usize, k: usize, skew: f64, rng: &mut SmallRng) -> Vec<usize> {
    let weights: Vec<f64> = (0..k).map(|i| 1.0 / ((i + 1) as f64).powf(skew)).collect();
    let total: f64 = weights.iter().sum();
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| ((w / total) * n as f64).floor() as usize)
        .collect();
    // Ensure non-empty buckets and exact total.
    for s in sizes.iter_mut() {
        if *s == 0 {
            *s = 1;
        }
    }
    let mut assigned: usize = sizes.iter().sum();
    while assigned > n {
        // Trim from the largest bucket.
        let (idx, _) = sizes
            .iter()
            .enumerate()
            .max_by_key(|(_, &s)| s)
            .expect("non-empty sizes");
        if sizes[idx] > 1 {
            sizes[idx] -= 1;
            assigned -= 1;
        } else {
            break;
        }
    }
    while assigned < n {
        let idx = rng.gen_range(0..k);
        sizes[idx] += 1;
        assigned += 1;
    }
    // Shuffle so cluster index order doesn't encode size rank.
    for i in (1..k).rev() {
        let j = rng.gen_range(0..=i);
        sizes.swap(i, j);
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivf::{IvfPqIndex, IvfPqParams};
    use std::collections::HashMap;

    #[test]
    fn generates_requested_count_and_dim() {
        for kind in DatasetKind::all() {
            let spec = SyntheticSpec::new(kind, 500).with_clusters(10).with_seed(1);
            let ds = spec.generate_with_meta();
            assert_eq!(ds.vectors.len(), 500);
            assert_eq!(ds.vectors.dim(), kind.dim());
            assert_eq!(ds.cluster_of.len(), 500);
            assert_eq!(ds.cluster_sizes.iter().sum::<usize>(), 500);
            assert_eq!(kind.dim() % kind.pq_m(), 0);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = SyntheticSpec::sift_like(300).with_seed(9).generate();
        let b = SyntheticSpec::sift_like(300).with_seed(9).generate();
        assert_eq!(a, b);
        let c = SyntheticSpec::sift_like(300).with_seed(10).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn size_skew_produces_imbalance() {
        let skewed = SyntheticSpec::spacev_like(2000)
            .with_clusters(32)
            .with_size_skew(1.1)
            .with_seed(3)
            .generate_with_meta();
        assert!(skewed.size_skew_ratio() > 10.0, "ratio {}", skewed.size_skew_ratio());

        let uniform = SyntheticSpec::spacev_like(2000)
            .with_clusters(32)
            .with_size_skew(0.0)
            .with_seed(3)
            .generate_with_meta();
        assert!(uniform.size_skew_ratio() < 3.0, "ratio {}", uniform.size_skew_ratio());
    }

    #[test]
    fn values_respect_kind_ranges() {
        let sift = SyntheticSpec::sift_like(200).with_seed(4).generate();
        assert!(sift.as_flat().iter().all(|&x| (0.0..=255.0).contains(&x)));
        let deep = SyntheticSpec::deep_like(200).with_seed(4).generate();
        assert!(deep.as_flat().iter().all(|&x| (-4.0..=4.0).contains(&x)));
        let spacev = SyntheticSpec::spacev_like(200).with_seed(4).generate();
        assert!(spacev.as_flat().iter().all(|&x| (-128.0..=127.0).contains(&x)));
    }

    #[test]
    fn cooccurrence_injection_yields_repeated_code_triplets() {
        // Encode the generated data with IVFPQ and check that at least one
        // positioned code triplet repeats far more often than chance.
        let spec = SyntheticSpec::sift_like(1500)
            .with_clusters(8)
            .with_cooccurrence(0.5)
            .with_seed(5);
        let ds = spec.generate();
        let index = IvfPqIndex::train(&ds, &IvfPqParams::new(8, 16).with_train_size(800), 2);

        let mut triplet_counts: HashMap<(usize, [u8; 3]), usize> = HashMap::new();
        let mut total_codes = 0usize;
        for list in index.lists() {
            for i in 0..list.len() {
                let code = list.code(i, 16);
                total_codes += 1;
                for start in 0..(16 - 3) {
                    let key = (start, [code[start], code[start + 1], code[start + 2]]);
                    *triplet_counts.entry(key).or_default() += 1;
                }
            }
        }
        let max_freq = triplet_counts.values().copied().max().unwrap_or(0) as f64
            / total_codes.max(1) as f64;
        // The paper reports 5.7% for SIFT1B's most frequent triplet; our
        // injection should produce at least a few percent.
        assert!(max_freq > 0.03, "max triplet frequency {max_freq}");
    }

    #[test]
    fn power_law_sizes_sum_and_nonzero() {
        let mut rng = SmallRng::seed_from_u64(0);
        let sizes = power_law_sizes(1000, 37, 1.2, &mut rng);
        assert_eq!(sizes.len(), 37);
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        assert!(sizes.iter().all(|&s| s >= 1));
    }
}
