//! Criterion microbenchmark of top-k selection: heap maintenance during the
//! scan and the Opt4 pruned merge of thread-local heaps (Figure 9 /
//! Figure 15).

use annkit::topk::TopK;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use upanns::topk_prune::merge_thread_local;

fn candidate_stream(n: usize) -> Vec<(u64, f32)> {
    (0..n)
        .map(|i| (i as u64, ((i as u64 * 2654435761) % 1_000_000) as f32))
        .collect()
}

fn bench_heap_push(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_heap_push");
    group.sample_size(20);
    let candidates = candidate_stream(100_000);
    // Distances only, consecutive ids — the shape the scan loops feed to
    // push_batch.
    let distances: Vec<f32> = candidates.iter().map(|&(_, d)| d).collect();
    for &k in &[10usize, 100] {
        group.throughput(Throughput::Elements(candidates.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut heap = TopK::new(k);
                for &(id, d) in &candidates {
                    heap.push(id, d);
                }
                std::hint::black_box(heap.threshold())
            });
        });
        // Pinned-backend batch-insert variants: `simd` is the best detected
        // backend's vector pre-filter, `scalar` the portable one. Both
        // names exist on every machine (the name check requires them).
        for (variant, backend) in [
            ("push_batch_simd", annkit::simd::detect()),
            ("push_batch_scalar", annkit::simd::Backend::Scalar),
        ] {
            group.bench_with_input(BenchmarkId::new(variant, k), &k, |b, &k| {
                b.iter(|| {
                    let mut heap = TopK::new(k);
                    heap.push_batch_with(backend, 0, &distances);
                    std::hint::black_box(heap.threshold())
                });
            });
        }
    }
    group.finish();
}

fn bench_pruned_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_merge");
    group.sample_size(30);
    for &(tasklets, k) in &[(11usize, 10usize), (11, 100), (24, 100)] {
        let mut locals = vec![TopK::new(k); tasklets];
        for (i, &(id, d)) in candidate_stream(50_000).iter().enumerate() {
            locals[i % tasklets].push(id, d);
        }
        let label = format!("t{tasklets}_k{k}");
        group.bench_with_input(BenchmarkId::new("naive", &label), &locals, |b, locals| {
            b.iter(|| std::hint::black_box(merge_thread_local(locals, k, false)));
        });
        group.bench_with_input(BenchmarkId::new("pruned", &label), &locals, |b, locals| {
            b.iter(|| std::hint::black_box(merge_thread_local(locals, k, true)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_heap_push, bench_pruned_merge);
criterion_main!(benches);
