//! A single DPU: its MRAM and accumulated execution statistics.

use crate::mram::Mram;

/// Counters accumulated by a DPU across kernel launches.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DpuStats {
    /// Total cycles charged to this DPU (compute + DMA + synchronization).
    pub cycles: u64,
    /// Instruction cycles charged by tasklets (compute only).
    pub compute_cycles: u64,
    /// Cycles spent in MRAM↔WRAM DMA transfers.
    pub dma_cycles: u64,
    /// Number of MRAM↔WRAM DMA transfers issued.
    pub dma_transfers: u64,
    /// Bytes read from MRAM into WRAM.
    pub mram_bytes_read: u64,
    /// Bytes written from WRAM back to MRAM.
    pub mram_bytes_written: u64,
    /// Number of kernel launches this DPU participated in.
    pub launches: u64,
    /// Peak WRAM footprint observed across launches.
    pub wram_peak_bytes: usize,
}

impl DpuStats {
    /// Merges counters from one kernel launch into the running totals.
    pub fn absorb(&mut self, other: &DpuStats) {
        self.cycles += other.cycles;
        self.compute_cycles += other.compute_cycles;
        self.dma_cycles += other.dma_cycles;
        self.dma_transfers += other.dma_transfers;
        self.mram_bytes_read += other.mram_bytes_read;
        self.mram_bytes_written += other.mram_bytes_written;
        self.launches += other.launches;
        self.wram_peak_bytes = self.wram_peak_bytes.max(other.wram_peak_bytes);
    }

    /// Effective MRAM read bandwidth in bytes/cycle over the DPU's lifetime
    /// (0 when no DMA has happened).
    pub fn mram_read_bandwidth(&self) -> f64 {
        if self.dma_cycles == 0 {
            0.0
        } else {
            self.mram_bytes_read as f64 / self.dma_cycles as f64
        }
    }
}

/// One simulated DPU.
#[derive(Debug, Clone)]
pub struct Dpu {
    id: usize,
    mram: Mram,
    stats: DpuStats,
}

impl Dpu {
    /// Creates DPU `id` with `mram_capacity` bytes of MRAM.
    pub fn new(id: usize, mram_capacity: usize) -> Self {
        Self {
            id,
            mram: Mram::new(mram_capacity),
            stats: DpuStats::default(),
        }
    }

    /// The DPU's index within the system.
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Immutable access to this DPU's MRAM.
    #[inline]
    pub fn mram(&self) -> &Mram {
        &self.mram
    }

    /// Mutable access to this DPU's MRAM (host-side loads, kernel writes).
    #[inline]
    pub fn mram_mut(&mut self) -> &mut Mram {
        &mut self.mram
    }

    /// Lifetime statistics of this DPU.
    #[inline]
    pub fn stats(&self) -> &DpuStats {
        &self.stats
    }

    /// Mutable statistics (used by the host when absorbing launch reports).
    #[inline]
    pub fn stats_mut(&mut self) -> &mut DpuStats {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_absorb_accumulates() {
        let mut total = DpuStats::default();
        let launch = DpuStats {
            cycles: 100,
            compute_cycles: 60,
            dma_cycles: 40,
            dma_transfers: 4,
            mram_bytes_read: 512,
            mram_bytes_written: 64,
            launches: 1,
            wram_peak_bytes: 1000,
        };
        total.absorb(&launch);
        total.absorb(&launch);
        assert_eq!(total.cycles, 200);
        assert_eq!(total.dma_transfers, 8);
        assert_eq!(total.launches, 2);
        assert_eq!(total.wram_peak_bytes, 1000);
        assert!((total.mram_read_bandwidth() - 1024.0 / 80.0).abs() < 1e-9);
    }

    #[test]
    fn fresh_dpu_is_empty() {
        let dpu = Dpu::new(3, 4096);
        assert_eq!(dpu.id(), 3);
        assert_eq!(dpu.mram().allocated(), 0);
        assert_eq!(dpu.stats().cycles, 0);
        assert_eq!(dpu.stats().mram_read_bandwidth(), 0.0);
    }
}
